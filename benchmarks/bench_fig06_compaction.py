"""Figure 6 — end-to-end time of the three compaction strategies plus the
downstream KSP (K = 8) on the Twitter analogue, as the kept-edge fraction
sweeps from ~0.005% to 100%.

Paper's crossover structure: regeneration wins decisively when almost
everything is pruned (37–48× over the others at 0.001%), the three tie in
the middle, and edge-swap wins when most of the graph survives (4.4–7.6×
over regeneration), with edge-swap consistently ~1.3× over status-array.
"""

from repro.bench import experiments

FRACTIONS = (0.00005, 0.0005, 0.005, 0.05, 0.2, 0.655, 1.0)


def test_fig06_compaction(benchmark, runner, emit):
    report = benchmark.pedantic(
        lambda: experiments.fig06_compaction(
            runner, graph_name="GT", fractions=FRACTIONS, k=8
        ),
        rounds=1,
        iterations=1,
    )
    emit(report)
    # columns: frac, regen-compact, regen-ksp, swap-compact, swap-ksp,
    #          status-compact, status-ksp
    smallest = report.rows[0]
    largest = report.rows[-1]
    regen_total_small = smallest[1] + smallest[2]
    swap_total_small = smallest[3] + smallest[4]
    status_total_small = smallest[5] + smallest[6]
    # when almost everything is pruned, regeneration wins end-to-end
    # (paper: 37-48x at 0.001%; the renumbered small CSR is what the
    # downstream KSP wants)
    assert regen_total_small <= swap_total_small * 1.2
    assert regen_total_small <= status_total_small * 1.2
    # the paper's other robust ordering: edge-swap's mask-free traversal
    # beats the status array end-to-end when most of the graph survives
    # (paper: consistently ~1.3x).  NOTE the paper's third ordering —
    # edge-swap *building* cheaper than regeneration at 100% — is a C++
    # pointer-arithmetic artefact that does not carry to NumPy, where both
    # builds are single vectorised passes; see EXPERIMENTS.md.
    swap_total_large = largest[3] + largest[4]
    status_total_large = largest[5] + largest[6]
    assert swap_total_large <= status_total_large * 1.1
    # status array is always the cheapest to *build* (it builds nothing)
    assert largest[5] <= largest[1]
    assert largest[5] <= largest[3]
