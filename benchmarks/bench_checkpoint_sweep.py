"""Beyond the paper — fault-tolerance overhead vs checkpoint interval.

One seeded rank kill mid-SSSP on an 8-node distributed PeeK run, swept
over checkpoint intervals for both recovery policies.  Every recovered
run must be bitwise-identical to the failure-free baseline, and the
report decomposes the extra simulated time into checkpoint / wasted /
recovery units — the crossover between the policies is the interesting
number (docs/parallel_model.md, "Fault tolerance").
"""

from repro.bench import experiments

INTERVALS = (1, 2, 4, 8)


def test_checkpoint_sweep(benchmark, runner, emit):
    report = benchmark.pedantic(
        lambda: experiments.ft_checkpoint_sweep(
            runner, k=8, nodes=8, intervals=INTERVALS
        ),
        rounds=1,
        iterations=1,
    )
    emit(report)
    assert len(report.rows) == 2 * len(INTERVALS)
    # the headline property: every recovered run reproduced the baseline
    assert all(row[-1] == "yes" for row in report.rows)
    restart = {row[0]: row for row in report.rows if row[1] == "restart"}
    recompute = {row[0]: row for row in report.rows if row[1] == "recompute"}
    # restart pays checkpoints, and pays fewer of them at longer intervals
    assert restart[1][2] > restart[INTERVALS[-1]][2] > 0
    # recompute never writes a (charged) checkpoint
    assert all(row[2] == 0 for row in recompute.values())
    # both policies actually recovered something
    assert all(row[4] > 0 for row in report.rows)
