#!/usr/bin/env python
"""KSP hot-path benchmark: epoch-stamped SSSP workspaces on vs. off.

Times Yen, OptYen, and PeeK on medium-suite graphs twice per query — once
with ``use_workspace=False`` (the historical fresh-allocation spur
searches, i.e. the pre-workspace baseline code path) and once with the
solver-shared epoch-stamped workspace — asserting the two produce identical
path sets before recording anything.

Outputs (both machine- and human-readable, so future PRs have a perf
trajectory to compare against):

* ``BENCH_hot_path.json`` at the repo root — one row per (algo, graph, K,
  variant) with ``wall_seconds`` and ``edges_relaxed``, plus a computed
  ``speedup`` on each workspace row;
* ``results/hot_path.txt`` — the rendered before/after table.

Environment knobs:

* ``REPRO_SCALE``       — tiny / small / medium (default: medium)
* ``REPRO_HOT_GRAPHS``  — comma-separated suite names (default: LJ,WL)
* ``REPRO_HOT_K``       — K per query (default: 8)
* ``REPRO_HOT_PAIRS``   — s-t pairs per graph (default: 1)

Run via ``make bench`` or ``PYTHONPATH=src python benchmarks/bench_hot_path.py``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.peek import PeeK
from repro.graph.suite import random_st_pairs, suite_graph
from repro.ksp.optyen import OptYenKSP
from repro.ksp.yen import YenKSP

REPO_ROOT = Path(__file__).resolve().parent.parent

ALGOS = (("Yen", YenKSP), ("OptYen", OptYenKSP), ("PeeK", PeeK))


def _run_once(cls, graph, source, target, k, use_workspace):
    t0 = time.perf_counter()
    solver = cls(graph, source, target, use_workspace=use_workspace)
    result = solver.run(k)
    wall = time.perf_counter() - t0
    return result, wall


def run_suite(scale, graph_names, k, pairs):
    rows = []
    for name in graph_names:
        graph = suite_graph(name, scale)
        st_pairs = random_st_pairs(graph, pairs, seed=17)
        for source, target in st_pairs:
            for algo_name, cls in ALGOS:
                base_res, base_wall = _run_once(
                    cls, graph, source, target, k, use_workspace=False
                )
                ws_res, ws_wall = _run_once(
                    cls, graph, source, target, k, use_workspace=True
                )
                base_paths = [(p.distance, p.vertices) for p in base_res.paths]
                ws_paths = [(p.distance, p.vertices) for p in ws_res.paths]
                assert base_paths == ws_paths, (
                    f"{algo_name}/{name}: workspace changed the K paths"
                )
                common = {
                    "algo": algo_name,
                    "graph": name,
                    "scale": scale,
                    "n": graph.num_vertices,
                    "m": graph.num_edges,
                    "source": int(source),
                    "target": int(target),
                    "k": k,
                }
                rows.append(
                    {
                        **common,
                        "variant": "fresh",
                        "wall_seconds": round(base_wall, 6),
                        "edges_relaxed": int(base_res.stats.edges_relaxed),
                    }
                )
                rows.append(
                    {
                        **common,
                        "variant": "workspace",
                        "wall_seconds": round(ws_wall, 6),
                        "edges_relaxed": int(ws_res.stats.edges_relaxed),
                        "speedup": round(base_wall / ws_wall, 3) if ws_wall else None,
                    }
                )
                print(
                    f"{algo_name:>7} {name:>4} K={k}: "
                    f"fresh {base_wall:8.3f}s  workspace {ws_wall:8.3f}s  "
                    f"({base_wall / ws_wall:4.2f}x)"
                )
    return rows


def render(rows, scale, k):
    lines = [
        "KSP hot path: fresh-allocation spur searches vs epoch-stamped workspace",
        f"scale={scale}  K={k}  (identical path sets asserted per row)",
        "",
        f"{'algo':>7} {'graph':>5} {'variant':>10} {'wall (s)':>10} "
        f"{'edges relaxed':>14} {'speedup':>8}",
    ]
    for r in rows:
        speedup = f"{r['speedup']:.2f}x" if r.get("speedup") else ""
        lines.append(
            f"{r['algo']:>7} {r['graph']:>5} {r['variant']:>10} "
            f"{r['wall_seconds']:>10.3f} {r['edges_relaxed']:>14} {speedup:>8}"
        )
    by_algo: dict[str, list[float]] = {}
    for r in rows:
        if r.get("speedup"):
            by_algo.setdefault(r["algo"], []).append(r["speedup"])
    lines.append("")
    for algo, sp in by_algo.items():
        mean = sum(sp) / len(sp)
        lines.append(f"{algo}: mean workspace speedup {mean:.2f}x over {len(sp)} queries")
    return "\n".join(lines)


def main() -> None:
    scale = os.environ.get("REPRO_SCALE", "medium")
    graph_names = os.environ.get("REPRO_HOT_GRAPHS", "LJ,WL").split(",")
    k = int(os.environ.get("REPRO_HOT_K", "8"))
    pairs = int(os.environ.get("REPRO_HOT_PAIRS", "1"))

    rows = run_suite(scale, [g.strip() for g in graph_names if g.strip()], k, pairs)
    payload = {
        "benchmark": "hot_path",
        "scale": scale,
        "k": k,
        "pairs_per_graph": pairs,
        "rows": rows,
    }
    json_path = REPO_ROOT / "BENCH_hot_path.json"
    json_path.write_text(json.dumps(payload, indent=2) + "\n")

    report = render(rows, scale, k)
    txt_path = REPO_ROOT / "results" / "hot_path.txt"
    txt_path.parent.mkdir(exist_ok=True)
    txt_path.write_text(report + "\n")
    print(f"\n{report}\n\n[saved to {json_path} and {txt_path}]")


if __name__ == "__main__":
    main()
