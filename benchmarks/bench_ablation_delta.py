"""Ablation — the Δ-stepping bucket width (paper §6.2's SSSP kernel).

Δ controls the phase-count vs re-relaxation trade-off: tiny Δ degenerates
toward Dijkstra (many cheap phases, no wasted work), huge Δ toward
Bellman–Ford (few phases, heavy re-relaxation).  The sweep measures real
runtime, relaxation count, and phase count around the
:func:`~repro.sssp.delta_stepping.choose_delta` heuristic.
"""

import time

import numpy as np

from repro.sssp.delta_stepping import choose_delta, delta_stepping

MULTIPLIERS = (0.1, 0.5, 1.0, 2.0, 10.0)


def run(runner, graph_name: str):
    g = runner.graph(graph_name)
    s, _ = runner.pairs(graph_name)[0]
    base = choose_delta(g)
    rows = []
    for mult in MULTIPLIERS:
        t0 = time.perf_counter()
        res = delta_stepping(g, s, delta=base * mult)
        secs = time.perf_counter() - t0
        rows.append(
            (mult, secs, res.stats.edges_relaxed, res.stats.phases)
        )
    return rows


def test_ablation_delta(benchmark, runner, emit):
    from repro.bench.experiments import ExperimentReport

    rows = benchmark.pedantic(
        lambda: run(runner, "GT"), rounds=1, iterations=1
    )
    emit(
        ExperimentReport(
            experiment="ablation_delta",
            title="Ablation — delta-stepping bucket width on GT",
            header=["x heuristic", "seconds", "relaxations", "phases"],
            rows=[list(r) for r in rows],
            digits=4,
        )
    )
    phases = [r[3] for r in rows]
    relaxed = [r[2] for r in rows]
    # the structural trade-off must hold: wider buckets -> fewer phases,
    # more (or equal) re-relaxation work
    assert phases[0] >= phases[-1]
    assert relaxed[-1] >= min(relaxed)
