"""Table 3 — serial runtime of all six algorithms at K = 8 and K = 128.

Paper's result: PeeK wins every cell; 2.2× over the best baseline on
average at K = 8 and 3.1× at K = 128, with SB* the strongest serial
baseline at large K.  Real wall-clock, one thread, identical s–t pairs.
"""

from repro.bench import experiments

METHODS = ("Yen", "NC", "OptYen", "SB", "SB*", "PeeK")


def test_table3_serial(benchmark, runner, emit):
    report = benchmark.pedantic(
        lambda: experiments.table3_serial(runner, ks=(8, 128), methods=METHODS),
        rounds=1,
        iterations=1,
    )
    emit(report)

    def row(k, method):
        return next(
            r[2:] for r in report.rows if r[0] == f"K={k}" and r[1] == method
        )

    for k in (8, 128):
        peek = row(k, "PeeK")
        assert all(v is not None for v in peek), "PeeK must never time out"
        for method in ("Yen", "OptYen"):
            other = row(k, method)
            wins = sum(
                1
                for p, o in zip(peek, other)
                if o is not None and p <= o
            )
            present = sum(1 for o in other if o is not None)
            assert wins >= present * 0.7, (
                f"K={k}: PeeK beat {method} on only {wins}/{present} graphs"
            )
    assert "PeeK vs best baseline" in report.notes
