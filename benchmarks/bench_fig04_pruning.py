"""Figure 4 — pruning power of the K upper bound, K = 8 and 128.

Paper's result: 98.4% of vertices / 97.7% of edges pruned on average at
K = 8, and nearly the same (97.7% / 96.6%) at K = 128.
"""

from repro.bench import experiments


def test_fig04_pruning(benchmark, runner, emit):
    report = benchmark.pedantic(
        lambda: experiments.fig04_pruning(runner, ks=(8, 128)),
        rounds=1,
        iterations=1,
    )
    emit(report)
    avg = report.rows[-1]
    assert avg[0] == "AVG"
    # strong pruning at K=8 (paper: 98.4% V / 97.7% E)
    assert avg[1] > 60.0, f"K=8 vertex pruning too weak: {avg[1]:.1f}%"
    assert avg[2] > 60.0, f"K=8 edge pruning too weak: {avg[2]:.1f}%"
    # pruning power persists at K=128 (paper: within ~1% of K=8)
    assert avg[3] > 30.0, f"K=128 vertex pruning too weak: {avg[3]:.1f}%"
