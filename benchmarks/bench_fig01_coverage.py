"""Figure 1 — % of vertices/edges covered by the top-K paths on the
Twitter-analogue graph, K from 4 to 1024.

Paper's result: coverage stays below 0.01% of vertices even at K = 4096.
At reproduction scale the graph is ~10⁴× smaller so the absolute
percentages are larger, but the figure's message — coverage is minuscule
and nearly flat in K — is what this bench regenerates.
"""

from repro.bench import experiments


def test_fig01_coverage(benchmark, runner, emit):
    report = benchmark.pedantic(
        lambda: experiments.fig01_coverage(
            runner, graph_name="GT", ks=(4, 16, 64, 256, 1024)
        ),
        rounds=1,
        iterations=1,
    )
    emit(report)
    ks = [row[0] for row in report.rows]
    cov_v = [row[1] for row in report.rows]
    # the paper's observation in assert form: tiny and nearly flat
    assert cov_v[-1] < 25.0, "top-K paths must cover a small fraction"
    assert cov_v == sorted(cov_v), "coverage is monotone in K"
    assert ks[0] == 4
