"""Legacy setup shim.

Exists so ``pip install -e .`` works without the ``wheel`` package (offline
environments): with no [build-system] table in pyproject.toml, pip falls back
to ``setup.py develop`` which needs only setuptools.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
