"""Unit tests for calibration, GTEPS and speedup curves."""

import pytest

from repro.parallel.metrics import Calibration, calibrate, gteps, speedup_curve
from repro.parallel.scheduler import MachineModel
from repro.parallel.workload import JobKind, Phase, Workload


def wl(work=80_000):
    return Workload([Phase(JobKind.DATA, work // 4) for _ in range(4)])


class TestCalibration:
    def test_tau_from_measurement(self):
        cal = calibrate(wl(1000), measured_serial_seconds=2.0)
        assert cal.tau == pytest.approx(2.0 / 1000)
        assert cal.seconds(500) == pytest.approx(1.0)

    def test_empty_workload_safe(self):
        cal = calibrate(Workload([]), 1.0)
        assert cal.tau == 1.0

    def test_simulated_serial_seconds_match_measurement(self):
        w = wl()
        cal = calibrate(w, 3.5)
        from repro.parallel.scheduler import simulate

        assert cal.seconds(simulate(w, 1).time_units) == pytest.approx(3.5)


class TestGteps:
    def test_basic(self):
        assert gteps(2_000_000_000, 2.0) == pytest.approx(1.0)

    def test_zero_time(self):
        assert gteps(100, 0.0) == 0.0


class TestSpeedupCurve:
    def test_monotone_for_data_parallel(self):
        curve = speedup_curve(wl(), [1, 2, 4, 8])
        assert curve[1] == pytest.approx(1.0)
        assert curve[2] > 1.0
        assert curve[8] >= curve[2]

    def test_respects_model(self):
        tight = MachineModel(bandwidth_cap=2.0)
        curve = speedup_curve(wl(), [32], model=tight)
        assert curve[32] <= 2.0 + 1e-9
