"""Unit tests for the shared-memory scheduling simulator."""

import pytest

from repro.parallel.scheduler import MachineModel, simulate
from repro.parallel.workload import JobKind, Phase, TaskPhase, Workload


def data_wl(work=100_000, phases=4):
    return Workload([Phase(JobKind.DATA, work // phases) for _ in range(phases)])


class TestBasicLaws:
    def test_one_thread_equals_serial_work(self):
        wl = data_wl()
        rep = simulate(wl, 1)
        assert rep.time_units == wl.total_work

    def test_more_threads_never_slower(self):
        wl = data_wl()
        times = [simulate(wl, p).time_units for p in (1, 2, 4, 8, 16, 32)]
        for a, b in zip(times, times[1:]):
            assert b <= a + 1e-9

    def test_speedup_bounded_by_thread_count(self):
        wl = data_wl()
        for p in (2, 4, 8):
            rep = simulate(wl, p)
            assert rep.speedup_vs_serial <= p + 1e-9

    def test_serial_phase_does_not_scale(self):
        wl = Workload([Phase(JobKind.SERIAL, 1000)])
        assert simulate(wl, 32).time_units == 1000

    def test_bandwidth_cap_limits_data_speedup(self):
        model = MachineModel(sync_overhead=0.0, bandwidth_cap=4.0)
        wl = Workload([Phase(JobKind.DATA, 1_000_000)])
        rep = simulate(wl, 32, model)
        assert rep.speedup_vs_serial <= 4.0 + 1e-9

    def test_tiny_phase_engages_one_thread(self):
        model = MachineModel(min_chunk=1000.0, sync_overhead=5.0)
        wl = Workload([Phase(JobKind.DATA, 10)])
        # work below one chunk: single thread, no barrier
        assert simulate(wl, 32, model).time_units == 10

    def test_bad_thread_count(self):
        with pytest.raises(ValueError):
            simulate(data_wl(), 0)


class TestTaskPhases:
    def test_single_task_uses_inner_level(self):
        model = MachineModel(sync_overhead=0.0, task_spawn=0.0)
        wl = Workload([TaskPhase(tasks=(10_000,))])
        t1 = simulate(wl, 1, model).time_units
        t8 = simulate(wl, 8, model).time_units
        assert t8 < t1  # the paper's inner (per-SSSP) parallelism
        assert t8 >= t1 / 8

    def test_many_equal_tasks_balance(self):
        model = MachineModel(
            sync_overhead=0.0, task_spawn=0.0, inner_penalty=1e9,
            bandwidth_cap=1e9,
        )
        # inner level disabled (penalty huge): pure outer-level scheduling
        wl = Workload([TaskPhase(tasks=(100,) * 8)])
        assert simulate(wl, 8, model).time_units == pytest.approx(100.0, rel=0.01)

    def test_lpt_handles_skew(self):
        model = MachineModel(sync_overhead=0.0, task_spawn=0.0,
                             inner_penalty=1e9, bandwidth_cap=1e9)
        wl = Workload([TaskPhase(tasks=(800, 100, 100, 100, 100))])
        # the long task dominates the makespan
        rep = simulate(wl, 4, model)
        assert rep.time_units == pytest.approx(800.0, rel=0.01)

    def test_empty_task_phase(self):
        wl = Workload([TaskPhase(tasks=())])
        assert simulate(wl, 4).time_units == 0.0


class TestReport:
    def test_phase_breakdown(self):
        wl = Workload(
            [Phase(JobKind.DATA, 100, "a"), Phase(JobKind.SERIAL, 50, "b")]
        )
        rep = simulate(wl, 2)
        assert len(rep.phase_times) == 2
        assert rep.phase_times[0][0] == "a"
        assert rep.total_work == 150

    def test_model_helpers(self):
        m = MachineModel()
        assert m.barrier(1) == 0.0
        assert m.barrier(8) > m.barrier(2)
        assert m.inner_speedup(1) == 1.0
        assert 1.0 < m.inner_speedup(8) <= 8.0
