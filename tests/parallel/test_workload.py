"""Unit tests for workload construction from real algorithm statistics."""

import pytest

from repro.core.peek import PeeK, peek_ksp
from repro.ksp.optyen import optyen_ksp
from repro.parallel.workload import (
    JobKind,
    Phase,
    TaskPhase,
    Workload,
    baseline_ksp_workload,
    compaction_workload,
    ksp_workload,
    peek_workload,
    pruning_workload,
)
from tests.conftest import random_reachable_pair


class TestWorkloadAlgebra:
    def test_concatenation(self):
        a = Workload([Phase(JobKind.DATA, 10)], label="a")
        b = Workload([Phase(JobKind.SERIAL, 5)])
        c = a + b
        assert c.num_phases == 2
        assert c.total_work == 15
        assert c.label == "a"

    def test_task_phase_work(self):
        tp = TaskPhase(tasks=(3, 4, 5))
        assert tp.work == 12

    def test_serial_time_equals_total_work(self):
        wl = Workload([Phase(JobKind.DATA, 7), TaskPhase(tasks=(1, 2))])
        assert wl.serial_time_units() == 10


class TestBuilders:
    @pytest.fixture
    def peek_result(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=17)
        return peek_ksp(medium_er, s, t, 6)

    def test_pruning_workload_phases(self, peek_result):
        wl = pruning_workload(peek_result.prune.stats)
        kinds = {p.kind for p in wl.phases}
        assert JobKind.DATA in kinds
        assert JobKind.EMBARRASSING in kinds  # path validation
        assert wl.total_work > 0

    def test_pruning_workload_dijkstra_kernel_is_serial(self, medium_er):
        from repro.core.pruning import k_upper_bound_prune

        s, t = random_reachable_pair(medium_er, seed=17)
        pr = k_upper_bound_prune(medium_er, s, t, 4, kernel="dijkstra")
        wl = pruning_workload(pr.stats)
        assert any(p.kind is JobKind.SERIAL for p in wl.phases)

    def test_compaction_workload(self, peek_result):
        wl = compaction_workload(peek_result.compaction)
        assert wl.num_phases == 1
        assert wl.phases[0].kind is JobKind.EMBARRASSING

    def test_ksp_workload_task_phases(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=17)
        res = optyen_ksp(medium_er, s, t, 6)
        wl = ksp_workload(res.stats)
        assert any(isinstance(p, TaskPhase) for p in wl.phases)

    def test_peek_workload_composes_stages(self, peek_result):
        wl = peek_workload(peek_result)
        assert wl.label == "peek"
        labels = [getattr(p, "label", "") for p in wl.phases]
        assert any("sssp" in lbl for lbl in labels)
        assert any("compact" in lbl for lbl in labels)
        assert any("ksp" in lbl for lbl in labels)

    def test_baseline_workload_label(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=17)
        res = optyen_ksp(medium_er, s, t, 4)
        assert baseline_ksp_workload(res.stats).label == "baseline-ksp"

    def test_base_peek_variant_still_builds(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=17)
        res = PeeK(medium_er, s, t, prune=False, compact=False).run(3)
        wl = peek_workload(res)
        assert wl.total_work > 0
