"""Tests for the real-parallel shared-memory Δ-stepping backend."""

import numpy as np
import pytest

from repro.analysis.race import MPBackendFootprints
from repro.core.compaction import compact_status_array
from repro.errors import KSPError
from repro.graph.generators import erdos_renyi, grid_network
from repro.parallel.mp_backend import SharedMemoryDeltaExecutor
from repro.sssp.delta_stepping import choose_delta, delta_stepping
from repro.sssp.dijkstra import dijkstra


def assert_bitwise(a, b):
    assert np.array_equal(a.dist, b.dist, equal_nan=True)
    assert np.array_equal(a.parent, b.parent)


@pytest.fixture(scope="module")
def er_graph():
    return erdos_renyi(200, 5.0, seed=1)


class TestCorrectness:
    def test_matches_dijkstra(self, er_graph):
        mp = delta_stepping(er_graph, 0, backend="mp", num_workers=2)
        dij = dijkstra(er_graph, 0)
        assert np.allclose(
            np.nan_to_num(mp.dist, posinf=-1.0),
            np.nan_to_num(dij.dist, posinf=-1.0),
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_bitwise_vs_vectorized(self, seed):
        g = erdos_renyi(150, 4.0, seed=seed)
        assert_bitwise(
            delta_stepping(g, 0, backend="vectorized"),
            delta_stepping(g, 0, backend="mp", num_workers=2),
        )

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_worker_count_invariance(self, er_graph, workers):
        """Contiguous chunks concatenated in worker order restore the exact
        frontier order, so any W yields the serial batch sequence."""
        assert_bitwise(
            delta_stepping(er_graph, 5, backend="vectorized"),
            delta_stepping(er_graph, 5, backend="mp", num_workers=workers),
        )

    def test_vertex_mask(self, er_graph):
        mask = np.ones(er_graph.num_vertices, dtype=bool)
        mask[10:40] = False
        assert_bitwise(
            delta_stepping(er_graph, 0, vertex_mask=mask, backend="vectorized"),
            delta_stepping(
                er_graph, 0, vertex_mask=mask, backend="mp", num_workers=2
            ),
        )

    def test_grid(self):
        g = grid_network(12, 12, seed=0)
        assert_bitwise(
            delta_stepping(g, 0, backend="scalar"),
            delta_stepping(g, 0, backend="mp", num_workers=2),
        )


class TestExecutorLifecycle:
    def test_reuse_across_sources(self, er_graph):
        """One executor amortises spawn + graph upload over many runs."""
        with SharedMemoryDeltaExecutor(er_graph, num_workers=2) as ex:
            for s in (0, 17, 99, 17):
                assert_bitwise(
                    delta_stepping(er_graph, s, backend="vectorized"),
                    delta_stepping(
                        er_graph,
                        s,
                        delta=ex.delta,
                        backend="mp",
                        executor=ex,
                    ),
                )

    def test_close_is_idempotent(self, er_graph):
        ex = SharedMemoryDeltaExecutor(er_graph, num_workers=1)
        delta_stepping(er_graph, 0, delta=ex.delta, backend="mp", executor=ex)
        ex.close()
        ex.close()

    def test_context_manager_closes(self, er_graph):
        with SharedMemoryDeltaExecutor(er_graph, num_workers=1) as ex:
            pass
        # after close the worker pool is gone; a run must fail loudly,
        # not hang
        with pytest.raises(Exception):
            delta_stepping(
                er_graph, 0, delta=ex.delta, backend="mp", executor=ex
            )

    def test_delta_mismatch_rejected(self, er_graph):
        with SharedMemoryDeltaExecutor(er_graph, num_workers=1) as ex:
            with pytest.raises(ValueError, match="delta"):
                delta_stepping(
                    er_graph,
                    0,
                    delta=ex.delta * 2.0,
                    backend="mp",
                    executor=ex,
                )

    def test_graph_mismatch_rejected(self, er_graph):
        other = erdos_renyi(200, 5.0, seed=2)
        with SharedMemoryDeltaExecutor(er_graph, num_workers=1) as ex:
            with pytest.raises(ValueError, match="graph"):
                delta_stepping(
                    other, 0, delta=ex.delta, backend="mp", executor=ex
                )

    def test_compaction_view_rejected(self, er_graph):
        keep_v = np.ones(er_graph.num_vertices, dtype=bool)
        keep_e = np.ones(er_graph.num_edges, dtype=bool)
        keep_e[::3] = False
        view = compact_status_array(er_graph, keep_v, keep_e)
        with pytest.raises(KSPError, match="CSR"):
            SharedMemoryDeltaExecutor(view, num_workers=1)

    def test_bad_worker_count(self, er_graph):
        with pytest.raises(ValueError):
            SharedMemoryDeltaExecutor(er_graph, num_workers=0)


class TestRaceDetection:
    def test_shipped_decomposition_is_race_free(self, er_graph):
        rec = MPBackendFootprints()
        delta_stepping(
            er_graph, 0, backend="mp", num_workers=2, footprint_recorder=rec
        )
        assert rec.phases  # the run actually recorded real footprints
        assert rec.check() == []

    def test_racy_commit_is_flagged(self):
        """Synthetic-bug regression: dropping the master-commit barrier
        (each worker writing its chunk's targets directly) must race
        whenever two chunks relax into a shared vertex."""
        # diamond: both frontier vertices 1 and 2 relax into vertex 3, and
        # with 2 workers they land in different chunks
        from repro.graph.build import from_edge_list

        g = from_edge_list(
            4,
            [(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)],
        )
        rec = MPBackendFootprints(racy_commit=True)
        delta_stepping(
            g, 0, backend="mp", num_workers=2, footprint_recorder=rec
        )
        findings = rec.check()
        assert findings
        assert any(f.rule == "RACE-WW" for f in findings)

    def test_workload_label(self, er_graph):
        rec = MPBackendFootprints()
        delta_stepping(
            er_graph, 0, backend="mp", num_workers=2, footprint_recorder=rec
        )
        assert rec.as_workload().label == "mp-backend-footprints"


class TestCheckCompatible:
    def test_direct_api(self, er_graph):
        ex = SharedMemoryDeltaExecutor(er_graph, num_workers=1)
        try:
            ex.check_compatible(er_graph, ex.delta)
            with pytest.raises(ValueError):
                ex.check_compatible(er_graph, ex.delta + 1.0)
        finally:
            ex.close()

    def test_default_delta_matches_choose_delta(self, er_graph):
        ex = SharedMemoryDeltaExecutor(er_graph, num_workers=1)
        try:
            assert ex.delta == choose_delta(er_graph)
        finally:
            ex.close()
