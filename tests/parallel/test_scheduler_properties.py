"""Hypothesis properties of the scheduling simulator.

The cost model is the load-bearing substitution of this reproduction
(DESIGN.md §1), so its sanity laws get property coverage: simulated time is
conserved at one thread, never increases with more threads, never beats
the work/threads lower bound, and phase order never matters.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.scheduler import MachineModel, simulate
from repro.parallel.workload import JobKind, Phase, TaskPhase, Workload


@st.composite
def workloads(draw):
    phases = []
    for _ in range(draw(st.integers(1, 12))):
        kind = draw(
            st.sampled_from(
                [JobKind.DATA, JobKind.EMBARRASSING, JobKind.SERIAL, "task"]
            )
        )
        if kind == "task":
            tasks = tuple(
                draw(
                    st.lists(
                        st.integers(1, 5000), min_size=1, max_size=10
                    )
                )
            )
            phases.append(TaskPhase(tasks=tasks))
        else:
            phases.append(Phase(kind, draw(st.integers(1, 100_000))))
    return Workload(phases)


THREADS = st.sampled_from([1, 2, 3, 4, 8, 16, 32, 64])


@given(workloads())
@settings(max_examples=60, deadline=None)
def test_one_thread_conserves_work(wl):
    assert simulate(wl, 1).time_units == wl.total_work


@given(workloads(), THREADS, THREADS)
@settings(max_examples=60, deadline=None)
def test_monotone_in_threads(wl, p1, p2):
    lo, hi = min(p1, p2), max(p1, p2)
    t_lo = simulate(wl, lo).time_units
    t_hi = simulate(wl, hi).time_units
    assert t_hi <= t_lo * (1.0 + 1e-9)


@given(workloads(), THREADS)
@settings(max_examples=60, deadline=None)
def test_never_beats_perfect_speedup(wl, p):
    t = simulate(wl, p).time_units
    assert t >= wl.total_work / p - 1e-6


@given(workloads(), THREADS)
@settings(max_examples=40, deadline=None)
def test_phase_order_irrelevant(wl, p):
    fwd = simulate(wl, p).time_units
    rev = simulate(Workload(list(reversed(wl.phases))), p).time_units
    assert abs(fwd - rev) < 1e-6


@given(workloads(), THREADS)
@settings(max_examples=40, deadline=None)
def test_serial_fraction_lower_bound(wl, p):
    """Amdahl: serial phases bound the simulated time from below."""
    serial = sum(
        ph.work
        for ph in wl.phases
        if isinstance(ph, Phase) and ph.kind is JobKind.SERIAL
    )
    assert simulate(wl, p).time_units >= serial - 1e-9


@given(workloads())
@settings(max_examples=30, deadline=None)
def test_bandwidth_cap_respected(wl):
    model = MachineModel(sync_overhead=0.0, task_spawn=0.0, bandwidth_cap=3.0)
    t = simulate(wl, 64, model).time_units
    assert t >= wl.total_work / 3.0 - 1e-6
