"""Distributed compaction equals serial compaction, rank count irrelevant."""

import numpy as np
import pytest

from repro.core.compaction import compact_edge_swap, compact_regenerate
from repro.core.pruning import k_upper_bound_prune
from repro.distributed.comm import SimComm
from repro.distributed.dist_compact import (
    distributed_edge_swap_ends,
    distributed_regenerate,
)
from repro.distributed.partition import RowPartition
from tests.conftest import random_reachable_pair


@pytest.fixture(scope="module")
def keep_case():
    from repro.graph.generators import erdos_renyi

    g = erdos_renyi(200, 4.0, seed=17)
    s, t = random_reachable_pair(g, seed=2)
    pr = k_upper_bound_prune(g, s, t, 6)
    return g, pr.keep_vertices, pr.keep_edges


class TestRegeneration:
    @pytest.mark.parametrize("ranks", [1, 2, 5])
    def test_equals_serial(self, keep_case, ranks):
        g, kv, ke = keep_case
        serial = compact_regenerate(g, kv, ke)
        part = RowPartition.build(g, ranks)
        comm = SimComm(ranks)
        dist = distributed_regenerate(part, kv, ke, comm)
        assert np.array_equal(dist.new_id, serial.new_id)
        assert np.array_equal(dist.old_id, serial.old_id)
        assert dist.graph.structurally_equal(serial.graph)

    def test_charges_communication(self, keep_case):
        g, kv, ke = keep_case
        comm = SimComm(4)
        distributed_regenerate(RowPartition.build(g, 4), kv, ke, comm)
        assert comm.report.comm_units > 0
        assert comm.report.compute_units > 0

    def test_empty_remnant(self, keep_case):
        g, _, _ = keep_case
        kv = np.zeros(g.num_vertices, dtype=bool)
        comm = SimComm(2)
        regen = distributed_regenerate(
            RowPartition.build(g, 2), kv, None, comm
        )
        assert regen.graph.num_vertices == 0
        assert regen.graph.num_edges == 0


class TestEdgeSwap:
    @pytest.mark.parametrize("ranks", [1, 3, 6])
    def test_ends_equal_serial_view(self, keep_case, ranks):
        g, kv, ke = keep_case
        serial_view = compact_edge_swap(g, kv, ke)
        part = RowPartition.build(g, ranks)
        comm = SimComm(ranks)
        ends = distributed_edge_swap_ends(part, kv, ke, comm)
        _, serial_ends, _, _, _ = serial_view.adjacency_arrays()
        assert np.array_equal(ends, serial_ends)

    def test_no_data_communication(self, keep_case):
        """Edge swap is embarrassingly parallel: a single barrier only."""
        g, kv, ke = keep_case
        comm = SimComm(4)
        distributed_edge_swap_ends(RowPartition.build(g, 4), kv, ke, comm)
        assert comm.report.total_bytes == 0
        assert comm.report.supersteps == 1
