"""CheckpointStore: roundtrip, tagging, and checksum enforcement."""

import pytest

from repro.distributed.checkpoint import CheckpointStore
from repro.errors import SanitizerError


class TestRoundtrip:
    def test_save_load(self):
        store = CheckpointStore()
        store.save_rank(1, 0, b"hello")
        store.save_rank(1, 1, b"world!")
        assert store.load_rank(0) == b"hello"
        assert store.load_rank(1) == b"world!"

    def test_latest_snapshot_wins(self):
        store = CheckpointStore()
        store.save_rank(1, 0, b"old")
        store.save_rank(2, 0, b"new")
        assert store.load_rank(0) == b"new"
        assert store.latest_tag() == 2

    def test_missing_rank_is_keyerror(self):
        store = CheckpointStore()
        with pytest.raises(KeyError):
            store.load_rank(3)

    def test_empty_payload(self):
        store = CheckpointStore()
        store.save_rank(1, 0, b"")
        assert store.load_rank(0) == b""


class TestAccounting:
    def test_counters(self):
        store = CheckpointStore()
        store.save_rank(1, 0, b"xxxx")
        store.save_rank(1, 1, b"yy")
        assert store.writes == 2
        assert store.bytes_written == 6
        assert store.rank_bytes() == [4, 2]
        assert sorted(store.ranks) == [0, 1]
        assert len(store) == 2

    def test_save_returns_size(self):
        store = CheckpointStore()
        assert store.save_rank(1, 0, b"abc") == 3


class TestChecksum:
    def test_corruption_raises_sanitizer_error(self):
        store = CheckpointStore()
        store.save_rank(7, 2, b"payload bytes")
        store.corrupt(2, offset=4)
        with pytest.raises(SanitizerError, match="rank 2.*tag 7.*CRC32"):
            store.load_rank(2)

    def test_corruption_is_per_rank(self):
        store = CheckpointStore()
        store.save_rank(1, 0, b"aaaa")
        store.save_rank(1, 1, b"bbbb")
        store.corrupt(1)
        assert store.load_rank(0) == b"aaaa"  # untouched rank still loads
        with pytest.raises(SanitizerError):
            store.load_rank(1)

    def test_resave_clears_corruption(self):
        store = CheckpointStore()
        store.save_rank(1, 0, b"data")
        store.corrupt(0)
        store.save_rank(2, 0, b"data")
        assert store.load_rank(0) == b"data"
