"""Unit tests for the SimComm BSP communicator."""

import numpy as np
import pytest

from repro.distributed.comm import CommModel, SimComm
from repro.errors import CommError


class TestCollectives:
    def test_alltoallv_routes_correctly(self):
        comm = SimComm(3)
        send = [
            [np.array([i * 10 + j]) for j in range(3)] for i in range(3)
        ]
        recv = comm.alltoallv(send)
        # recv[j][i] must equal send[i][j]
        for i in range(3):
            for j in range(3):
                assert recv[j][i][0] == i * 10 + j

    def test_alltoallv_shape_checked(self):
        comm = SimComm(2)
        with pytest.raises(CommError):
            comm.alltoallv([[1]])

    def test_allgather(self):
        comm = SimComm(4)
        out = comm.allgather([np.array([r]) for r in range(4)])
        assert [int(a[0]) for a in out] == [0, 1, 2, 3]

    def test_allreduce(self):
        comm = SimComm(3)
        assert comm.allreduce([3, 1, 2], op=min) == 1
        assert comm.allreduce([3, 1, 2], op=max) == 3

    def test_bcast(self):
        comm = SimComm(3)
        assert comm.bcast(42, root=1) == 42
        with pytest.raises(CommError):
            comm.bcast(1, root=9)

    def test_collective_length_checked(self):
        comm = SimComm(3)
        with pytest.raises(CommError):
            comm.allgather([np.zeros(1)])
        with pytest.raises(CommError):
            comm.allreduce([1, 2])


class TestAccounting:
    def test_single_rank_is_free(self):
        comm = SimComm(1)
        comm.allgather([np.zeros(100)])
        comm.barrier()
        assert comm.report.comm_units == 0.0
        assert comm.report.supersteps == 2

    def test_multi_rank_charges(self):
        comm = SimComm(4)
        comm.allgather([np.zeros(100)] * 4)
        assert comm.report.comm_units > 0
        assert comm.report.total_messages > 0

    def test_compute_takes_max(self):
        comm = SimComm(2, CommModel(cores_per_node=1))
        comm.compute([100, 10])
        assert comm.report.compute_units == 100.0
        assert comm.report.serial_work == 110.0

    def test_compute_divides_by_cores(self):
        one_core = SimComm(2, CommModel(cores_per_node=1))
        many_core = SimComm(2, CommModel(cores_per_node=16))
        one_core.compute([1000, 1000])
        many_core.compute([1000, 1000])
        assert many_core.report.compute_units < one_core.report.compute_units

    def test_compute_shape_checked(self):
        comm = SimComm(2)
        with pytest.raises(CommError):
            comm.compute([1])

    def test_empty_payloads_send_no_messages(self):
        comm = SimComm(2)
        send = [[np.empty(0), np.empty(0)], [np.empty(0), np.empty(0)]]
        comm.alltoallv(send)
        assert comm.report.total_messages == 0

    def test_bad_rank_count(self):
        with pytest.raises(CommError):
            SimComm(0)


class TestModelScaling:
    def test_scaled_for_shrinks_constants(self):
        m = CommModel()
        s = m.scaled_for(graph_edges=1_500_000)  # 1000x smaller than ref
        assert s.latency == pytest.approx(m.latency / 1000)
        assert s.per_byte == pytest.approx(m.per_byte / 1000)
        assert s.cores_per_node == m.cores_per_node

    def test_scaled_for_never_inflates(self):
        m = CommModel()
        s = m.scaled_for(graph_edges=10**12)
        assert s.latency == m.latency

    def test_step_cost_formula(self):
        m = CommModel(latency=10, per_message=2, per_byte=0.5)
        assert m.step_cost(max_bytes=100, num_messages=3) == 10 + 6 + 50
