"""Fault-tolerant distributed runs: injection, recovery, and accounting.

The headline property (the reason the whole layer exists): a run that
loses a rank and recovers must be **bitwise-identical** to the
failure-free run — same distances, same parents, same stats — and its
useful compute/comm charges must *equal* the failure-free run's, with
everything the failure cost broken out into the checkpoint / recovery /
wasted buckets.  That is asserted here across a grid of failure points ×
recovery policies, for both the distributed SSSP and full distributed
PeeK.
"""

import time

import numpy as np
import pytest

from repro.analysis.race import DistDeltaFootprints, RaceDetector
from repro.distributed import (
    CheckpointStore,
    DistSupervisor,
    FaultPlan,
    RecoveryConfig,
    RowPartition,
    SimComm,
    distributed_delta_stepping,
    distributed_peek,
)
from repro.errors import (
    KSPTimeout,
    RankFailure,
    RecoveryExhaustedError,
    SanitizerError,
)
from repro.graph.generators import erdos_renyi, preferential_attachment
from repro.serve.faults import FaultInjector, FaultRule
from tests.conftest import random_reachable_pair

RANKS = 4


@pytest.fixture(scope="module")
def er_case():
    g = erdos_renyi(150, 4.0, seed=5)
    return g, RowPartition.build(g, RANKS), 7


@pytest.fixture(scope="module")
def er_reference(er_case):
    _, part, src = er_case
    comm = SimComm(RANKS)
    res = distributed_delta_stepping(part, src, comm)
    return res, comm.report


@pytest.fixture(scope="module")
def pa_case():
    g = preferential_attachment(600, 6, seed=12)
    s, t = random_reachable_pair(g, seed=5)
    return g, s, t


def kill_plan(at_hit, rank=1, stage="dist.sssp", times=1):
    return FaultPlan(
        [FaultRule(stage, kind="rankfail", at_hit=at_hit, rank=rank, times=times)]
    )


class TestFaultPlan:
    def test_rejects_non_rankfail_rules(self):
        with pytest.raises(ValueError, match="rankfail"):
            FaultPlan([FaultRule("dist.sssp", kind="timeout")])

    def test_seed_determinism(self):
        mk = lambda: FaultPlan(
            [FaultRule("s", kind="rankfail", at_hit=None, rank=None)], seed=9
        )
        a, b = mk(), mk()
        assert a.at_hits == b.at_hits
        assert a.poll("s", 8, 0) == b.poll("s", 8, 0)

    def test_from_specs(self):
        plan = FaultPlan.from_specs(["dist.sssp.route:rankfail:3@2"])
        assert plan.at_hits == [3]
        assert plan.rules[0].rank == 2

    def test_rule_for_absent_rank_never_fires(self, er_case):
        _, part, src = er_case
        comm = SimComm(RANKS, fault_plan=kill_plan(1, rank=99))
        distributed_delta_stepping(part, src, comm)  # completes unharmed
        assert comm.report.failures == 0

    def test_unsupervised_failure_propagates(self, er_case):
        _, part, src = er_case
        comm = SimComm(RANKS, fault_plan=kill_plan(2, rank=0, stage="dist.sssp.route"))
        with pytest.raises(RankFailure) as exc:
            distributed_delta_stepping(part, src, comm)
        assert exc.value.rank == 0
        assert exc.value.stage == "dist.sssp.route"
        assert exc.value.superstep is not None

    def test_dead_rank_keeps_failing_until_revived(self):
        comm = SimComm(2)
        comm.kill(1)
        with pytest.raises(RankFailure):
            comm.barrier()
        with pytest.raises(RankFailure):
            comm.allreduce([1, 2], op=max)
        comm.revive(1)
        assert comm.allreduce([1, 2], op=max) == 2


class TestRecoveryGrid:
    """Bitwise equivalence at every (failure superstep × policy) grid point."""

    @pytest.mark.parametrize("policy", ["restart", "recompute"])
    @pytest.mark.parametrize("at_hit", [1, 3, 10, 25])
    def test_sssp_bitwise_identical(self, er_case, er_reference, policy, at_hit):
        _, part, src = er_case
        ref, ref_report = er_reference
        comm = SimComm(RANKS, fault_plan=kill_plan(at_hit))
        sup = DistSupervisor(comm, policy=policy, checkpoint_interval=2)
        res = distributed_delta_stepping(part, src, comm, supervisor=sup)
        rep = comm.report

        assert np.array_equal(res.dist, ref.dist)
        assert np.array_equal(res.parent, ref.parent)
        assert res.stats.edges_relaxed == ref.stats.edges_relaxed
        assert res.stats.phases == ref.stats.phases
        assert res.stats.phase_work == ref.stats.phase_work

        # the failure was observed, recovered, and billed
        assert rep.failures == 1
        assert rep.wasted_units > 0
        assert rep.recovery_units > 0
        # useful work is *identical* to the failure-free run — everything
        # the failure cost lives in the overhead buckets
        assert rep.compute_units == pytest.approx(ref_report.compute_units)
        assert rep.comm_units == pytest.approx(ref_report.comm_units)
        # and time decomposes exactly into the five buckets
        assert rep.time_units == pytest.approx(
            rep.compute_units
            + rep.comm_units
            + rep.checkpoint_units
            + rep.recovery_units
            + rep.wasted_units
        )

    @pytest.mark.parametrize("policy", ["restart", "recompute"])
    @pytest.mark.parametrize(
        "stage,at_hit",
        [
            ("dist.sssp.route", 2),  # mid-SSSP
            ("dist.sssp", 40),  # late SSSP (the reverse half)
            ("dist.bound", 1),  # bound-identification stage
            ("dist.compact", 1),  # compaction stage
        ],
    )
    def test_peek_bitwise_identical(self, pa_case, policy, stage, at_hit):
        g, s, t = pa_case
        base = distributed_peek(g, s, t, 6, RANKS)
        rep = distributed_peek(
            g,
            s,
            t,
            6,
            RANKS,
            fault_plan=kill_plan(at_hit, stage=stage),
            recovery=RecoveryConfig(policy=policy, checkpoint_interval=2),
        )
        assert rep.result.distances == base.result.distances
        assert [p.vertices for p in rep.result.paths] == [
            p.vertices for p in base.result.paths
        ]
        assert rep.failures == 1
        assert rep.recovery_units > 0
        assert rep.comm.compute_units == pytest.approx(
            base.comm.compute_units
        )
        assert rep.comm.comm_units == pytest.approx(base.comm.comm_units)
        assert rep.time_units > base.time_units

    def test_multiple_failures_multiple_recoveries(self, er_case, er_reference):
        _, part, src = er_case
        ref, _ = er_reference
        plan = FaultPlan(
            [
                FaultRule("dist.sssp", kind="rankfail", at_hit=3, rank=1),
                FaultRule("dist.sssp", kind="rankfail", at_hit=30, rank=2),
            ]
        )
        comm = SimComm(RANKS, fault_plan=plan)
        sup = DistSupervisor(comm, max_recoveries=4)
        res = distributed_delta_stepping(part, src, comm, supervisor=sup)
        assert np.array_equal(res.dist, ref.dist)
        assert comm.report.failures == 2

    def test_recompute_charges_no_checkpoints(self, er_case):
        _, part, src = er_case
        comm = SimComm(RANKS, fault_plan=kill_plan(5))
        sup = DistSupervisor(comm, policy="recompute")
        distributed_delta_stepping(part, src, comm, supervisor=sup)
        assert comm.report.checkpoint_units == 0
        assert comm.report.checkpoint_bytes == 0
        assert comm.report.recovery_units > 0

    def test_restart_checkpoint_cost_falls_with_interval(self, er_case):
        _, part, src = er_case
        costs = []
        for interval in (1, 4):
            comm = SimComm(RANKS)
            sup = DistSupervisor(comm, checkpoint_interval=interval)
            distributed_delta_stepping(part, src, comm, supervisor=sup)
            costs.append(comm.report.checkpoint_units)
        assert costs[0] > costs[1] > 0


class TestSupervisorLimits:
    def test_gives_up_after_max_recoveries(self, er_case):
        _, part, src = er_case
        comm = SimComm(RANKS, fault_plan=kill_plan(2, rank=3, times=50))
        sup = DistSupervisor(comm, max_recoveries=2)
        with pytest.raises(RecoveryExhaustedError, match="rank 3"):
            distributed_delta_stepping(part, src, comm, supervisor=sup)

    def test_failure_before_any_checkpoint_reraises(self):
        comm = SimComm(2)
        sup = DistSupervisor(comm)
        failure = RankFailure(1, stage="dist.x")
        with pytest.raises(RankFailure):
            sup.recover(failure)

    def test_corrupted_checkpoint_is_sanitizer_error(self, er_case):
        _, part, src = er_case
        comm = SimComm(RANKS, fault_plan=kill_plan(9))
        store = CheckpointStore()
        sup = DistSupervisor(comm, checkpoint_interval=1, store=store)
        orig = sup.recover

        def corrupting_recover(failure):
            store.corrupt(1, offset=5)
            return orig(failure)

        sup.recover = corrupting_recover
        with pytest.raises(SanitizerError, match="CRC32"):
            distributed_delta_stepping(part, src, comm, supervisor=sup)


class TestDeadline:
    def test_sssp_deadline(self, er_case):
        _, part, src = er_case
        with pytest.raises(KSPTimeout, match="dist.sssp"):
            distributed_delta_stepping(
                part, src, SimComm(RANKS), deadline=time.perf_counter() - 1
            )

    def test_peek_deadline(self, pa_case):
        g, s, t = pa_case
        with pytest.raises(KSPTimeout, match="dist.peek"):
            distributed_peek(
                g, s, t, 6, RANKS, deadline=time.perf_counter() - 1
            )

    def test_injected_timeout_at_distributed_stage(self, pa_case):
        g, s, t = pa_case
        inj = FaultInjector([FaultRule("dist.peek.bound", kind="timeout")])
        with inj.installed():
            with pytest.raises(KSPTimeout):
                distributed_peek(g, s, t, 6, RANKS)
        assert inj.fired == [("dist.peek.bound", "timeout")]

    def test_no_deadline_means_no_overhead_paths(self, er_case):
        # a plain run (no deadline, no supervisor) reports zero FT overhead
        _, part, src = er_case
        comm = SimComm(RANKS)
        distributed_delta_stepping(part, src, comm)
        rep = comm.report
        assert rep.failures == 0
        assert rep.checkpoint_units == rep.recovery_units == rep.wasted_units == 0
        assert rep.time_units == pytest.approx(
            rep.compute_units + rep.comm_units
        )


class TestRaceFootprints:
    def test_owner_routed_decomposition_is_clean(self, er_case):
        _, part, src = er_case
        det = RaceDetector(RANKS, label="dist-delta")
        comm = SimComm(RANKS, race_detector=det)
        distributed_delta_stepping(
            part, src, comm, footprint_recorder=DistDeltaFootprints()
        )
        assert det.findings == []

    def test_unrouted_writes_are_flagged(self, er_case):
        # the classic bug: the requesting rank writes the target's distance
        # directly instead of routing the request to its owner
        _, part, src = er_case
        det = RaceDetector(RANKS, label="dist-delta-bug")
        comm = SimComm(RANKS, race_detector=det)
        distributed_delta_stepping(
            part,
            src,
            comm,
            footprint_recorder=DistDeltaFootprints(owner_routed=False),
        )
        assert det.findings
        assert {f.rule for f in det.findings} <= {"RACE-RW", "RACE-WW"}
        assert all(f.context["resource"].startswith("dist[") for f in det.findings)

    def test_clean_even_under_recovery(self, er_case):
        # a recovered run replays supersteps; the replayed footprints must
        # still be race-free (the detector's clocks survive the rollback)
        _, part, src = er_case
        det = RaceDetector(RANKS, label="dist-delta-recovered")
        comm = SimComm(RANKS, race_detector=det, fault_plan=kill_plan(5))
        sup = DistSupervisor(comm)
        distributed_delta_stepping(
            part, src, comm, supervisor=sup,
            footprint_recorder=DistDeltaFootprints(),
        )
        assert comm.report.failures == 1
        assert det.findings == []
