"""Distributed Δ-stepping: identical results to serial, sane accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.comm import SimComm
from repro.distributed.dist_sssp import distributed_delta_stepping
from repro.distributed.partition import RowPartition
from repro.errors import VertexError
from repro.graph.build import from_edge_array
from repro.graph.generators import erdos_renyi, grid_network
from repro.sssp.dijkstra import dijkstra


def dist_equal(a, b):
    return np.allclose(np.nan_to_num(a, posinf=-1), np.nan_to_num(b, posinf=-1))


class TestCorrectness:
    @pytest.mark.parametrize("ranks", [1, 2, 3, 8])
    def test_matches_dijkstra(self, ranks):
        g = erdos_renyi(150, 4.0, seed=5)
        part = RowPartition.build(g, ranks)
        res = distributed_delta_stepping(part, 7, SimComm(ranks))
        assert dist_equal(res.dist, dijkstra(g, 7).dist)

    def test_grid(self):
        g = grid_network(10, 10, seed=2)
        part = RowPartition.build(g, 4)
        res = distributed_delta_stepping(part, 0, SimComm(4))
        assert dist_equal(res.dist, dijkstra(g, 0).dist)

    def test_parents_valid(self):
        from repro.paths import reconstruct_path

        g = erdos_renyi(80, 3.0, seed=9)
        part = RowPartition.build(g, 4)
        res = distributed_delta_stepping(part, 0, SimComm(4))
        ref = dijkstra(g, 0)
        for v in np.flatnonzero(np.isfinite(res.dist)).tolist():
            path = reconstruct_path(res.parent, 0, v)
            assert path is not None
            total = sum(
                g.edge_weight(a, b) for a, b in zip(path[:-1], path[1:])
            )
            assert total == pytest.approx(float(ref.dist[v]))

    def test_bad_source(self):
        g = erdos_renyi(10, 2.0, seed=0)
        part = RowPartition.build(g, 2)
        with pytest.raises(VertexError):
            distributed_delta_stepping(part, 99, SimComm(2))


class TestAccounting:
    def test_comm_grows_with_ranks(self):
        g = erdos_renyi(200, 5.0, seed=3)
        costs = []
        for ranks in (2, 8):
            comm = SimComm(ranks)
            distributed_delta_stepping(
                RowPartition.build(g, ranks), 0, comm
            )
            costs.append(comm.report.comm_units)
        assert costs[1] > costs[0]

    def test_compute_shrinks_with_ranks(self):
        g = erdos_renyi(400, 6.0, seed=3)
        units = []
        for ranks in (1, 8):
            comm = SimComm(ranks)
            distributed_delta_stepping(
                RowPartition.build(g, ranks), 0, comm
            )
            units.append(comm.report.compute_units)
        assert units[1] < units[0]

    def test_messages_counted(self):
        g = erdos_renyi(100, 4.0, seed=1)
        comm = SimComm(4)
        distributed_delta_stepping(RowPartition.build(g, 4), 0, comm)
        assert comm.report.total_messages > 0
        assert comm.report.total_bytes > 0
        assert comm.report.supersteps > 0


@given(
    st.integers(0, 2**31 - 1),
    st.integers(min_value=1, max_value=6),
)
@settings(max_examples=25, deadline=None)
def test_property_distributed_equals_serial(seed, ranks):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(max(ranks, 2), 60))
    m = int(rng.integers(n, 6 * n))
    g = from_edge_array(
        n,
        rng.integers(0, n, size=m),
        rng.integers(0, n, size=m),
        rng.random(m) + 0.01,
    )
    ranks = min(ranks, n)
    s = int(rng.integers(0, n))
    part = RowPartition.build(g, ranks)
    res = distributed_delta_stepping(part, s, SimComm(ranks))
    assert dist_equal(res.dist, dijkstra(g, s).dist)
