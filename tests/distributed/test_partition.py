"""Unit tests for 1-D row partitioning."""

import numpy as np
import pytest

from repro.distributed.partition import RowPartition
from repro.errors import PartitionError
from repro.graph.generators import erdos_renyi, preferential_attachment


class TestBuild:
    def test_ranges_cover_all_vertices(self):
        g = erdos_renyi(100, 4.0, seed=0)
        part = RowPartition.build(g, 4)
        covered = []
        for r in range(4):
            lo, hi = part.local_range(r)
            covered.extend(range(lo, hi))
        assert covered == list(range(100))

    def test_single_rank(self):
        g = erdos_renyi(50, 3.0, seed=1)
        part = RowPartition.build(g, 1)
        assert part.local_range(0) == (0, 50)

    def test_too_many_ranks(self):
        g = erdos_renyi(4, 1.0, seed=0)
        with pytest.raises(PartitionError):
            RowPartition.build(g, 10)

    def test_zero_ranks(self):
        g = erdos_renyi(4, 1.0, seed=0)
        with pytest.raises(PartitionError):
            RowPartition.build(g, 0)

    def test_edge_balance_on_skewed_graph(self):
        """Edge-count balancing keeps skewed graphs within ~3x of mean."""
        g = preferential_attachment(2000, 8, seed=2)
        part = RowPartition.build(g, 8)
        assert part.edge_balance() < 3.0


class TestOwnership:
    def test_owner_of_matches_ranges(self):
        g = erdos_renyi(100, 4.0, seed=0)
        part = RowPartition.build(g, 4)
        owners = part.owner_of(np.arange(100))
        for r in range(4):
            lo, hi = part.local_range(r)
            assert np.all(owners[lo:hi] == r)

    def test_local_vertices(self):
        g = erdos_renyi(30, 2.0, seed=0)
        part = RowPartition.build(g, 3)
        allv = np.concatenate([part.local_vertices(r) for r in range(3)])
        assert np.array_equal(allv, np.arange(30))

    def test_local_edge_counts_sum_to_m(self):
        g = erdos_renyi(100, 4.0, seed=0)
        part = RowPartition.build(g, 5)
        total = sum(part.local_edge_count(r) for r in range(5))
        assert total == g.num_edges

    def test_bad_rank(self):
        g = erdos_renyi(10, 2.0, seed=0)
        part = RowPartition.build(g, 2)
        with pytest.raises(PartitionError):
            part.local_range(5)
