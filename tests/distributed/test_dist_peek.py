"""Distributed PeeK: identical paths to serial PeeK, sensible scaling."""

import numpy as np
import pytest

from repro.core.peek import peek_ksp
from repro.distributed.comm import CommModel
from repro.distributed.dist_peek import DistributedPeeK, distributed_peek
from repro.errors import UnreachableTargetError
from repro.graph.build import from_edge_list
from repro.graph.generators import preferential_attachment
from tests.conftest import random_reachable_pair


@pytest.fixture(scope="module")
def pa_case():
    g = preferential_attachment(600, 6, seed=12)
    s, t = random_reachable_pair(g, seed=5)
    return g, s, t


class TestCorrectness:
    @pytest.mark.parametrize("nodes", [1, 2, 4])
    def test_matches_serial_peek(self, pa_case, nodes):
        g, s, t = pa_case
        ref = peek_ksp(g, s, t, 6).distances
        rep = distributed_peek(g, s, t, 6, nodes)
        assert np.allclose(rep.result.distances, ref)

    def test_unreachable(self):
        g = from_edge_list(4, [(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(UnreachableTargetError):
            distributed_peek(g, 0, 3, 2, 2)


class TestScaling:
    def test_more_nodes_speed_up_with_scaled_model(self, pa_case):
        g, s, t = pa_case
        model = CommModel().scaled_for(g.num_edges)
        t1 = distributed_peek(g, s, t, 4, 1, model=model).time_units
        t8 = distributed_peek(g, s, t, 4, 8, model=model).time_units
        assert t8 < t1

    def test_report_fields(self, pa_case):
        g, s, t = pa_case
        rep = distributed_peek(g, s, t, 4, 4)
        assert rep.edges_traversed > 0
        assert rep.comm.num_ranks == 4
        assert rep.comm.supersteps > 0
        assert rep.time_units == pytest.approx(
            rep.comm.time_units + rep.ksp_units
        )
        assert 0 < rep.comm.parallel_efficiency <= 16.5  # cores_per_node bound

    def test_constructor_wrapper_equivalence(self, pa_case):
        g, s, t = pa_case
        a = DistributedPeeK(g, s, t, 2).run(3)
        b = distributed_peek(g, s, t, 3, 2)
        assert np.allclose(a.result.distances, b.result.distances)

    def test_edge_swap_branch(self, pa_case):
        """alpha=0 forbids regeneration, exercising the distributed
        edge-swap compaction path."""
        g, s, t = pa_case
        serial = peek_ksp(g, s, t, 4).distances
        rep = distributed_peek(g, s, t, 4, 3, alpha=0.0)
        assert rep.result.compaction.strategy == "edge-swap"
        assert np.allclose(rep.result.distances, serial)
