"""Distributed sample sort: output equals np.sort, comm is charged."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.comm import SimComm
from repro.distributed.sample_sort import distributed_sample_sort
from repro.errors import CommError


class TestCorrectness:
    @pytest.mark.parametrize("ranks", [1, 2, 4, 8])
    def test_sorted_output(self, ranks):
        rng = np.random.default_rng(0)
        vals = rng.random(500)
        out = distributed_sample_sort(vals, SimComm(ranks))
        assert len(out) == ranks
        assert np.allclose(np.concatenate(out), np.sort(vals))

    def test_duplicates(self):
        vals = np.array([1.0, 1.0, 1.0, 0.5, 2.0, 0.5, 1.0, 3.0])
        out = distributed_sample_sort(vals, SimComm(4))
        assert np.allclose(np.concatenate(out), np.sort(vals))

    def test_already_sorted(self):
        vals = np.arange(100, dtype=np.float64)
        out = distributed_sample_sort(vals, SimComm(4))
        assert np.allclose(np.concatenate(out), vals)

    def test_too_few_values(self):
        with pytest.raises(CommError):
            distributed_sample_sort(np.array([1.0]), SimComm(4))


class TestAccounting:
    def test_three_rounds_charged(self):
        comm = SimComm(4)
        distributed_sample_sort(np.random.default_rng(1).random(400), comm)
        # allgather + bcast + alltoallv = at least 3 supersteps
        assert comm.report.supersteps >= 3
        assert comm.report.comm_units > 0


@given(st.integers(0, 2**31 - 1), st.integers(1, 8), st.integers(8, 300))
@settings(max_examples=30, deadline=None)
def test_property_equals_np_sort(seed, ranks, size):
    rng = np.random.default_rng(seed)
    vals = rng.normal(size=size) * rng.choice([0.01, 1.0, 100.0])
    ranks = min(ranks, size)
    out = distributed_sample_sort(vals, SimComm(ranks))
    assert np.allclose(np.concatenate(out), np.sort(vals))
