"""``CostModel.calibrate``: fitting the clock to measured bench data."""

import json
from pathlib import Path

import pytest

from repro.load.simclock import DEFAULT_COSTS, CostModel

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
HOT_PATH = REPO_ROOT / "BENCH_hot_path.json"


def synthetic_payload(a=2e-6, b=0.01):
    """Rows lying exactly on ``wall = a*edges + b`` for one family."""
    rows = []
    for algo, edges in (("Yen", 1_000_000), ("OptYen", 250_000), ("Yen", 600_000)):
        rows.append(
            {
                "algo": algo,
                "graph": "LJ",
                "variant": "workspace",
                "n": 30000,
                "m": 348051,
                "edges_relaxed": edges,
                "wall_seconds": a * edges + b,
            }
        )
    # distractors the filter must drop: other graph, other algo, no edges
    rows.append({"algo": "Yen", "graph": "WL", "variant": "workspace",
                 "edges_relaxed": 999, "wall_seconds": 99.0})
    rows.append({"algo": "PeeK", "graph": "LJ", "variant": "workspace",
                 "edges_relaxed": 820, "wall_seconds": 0.2})
    rows.append({"algo": "Yen", "graph": "LJ", "variant": "workspace",
                 "edges_relaxed": 0, "wall_seconds": 0.0})
    return {"rows": rows}


class TestCalibrate:
    def test_round_trip_on_exact_data(self):
        a, b = 2e-6, 0.01
        model = CostModel.calibrate(synthetic_payload(a, b), graph="LJ")
        assert model.per_edge_seconds == pytest.approx(a, rel=1e-9)
        assert model.per_query_seconds == pytest.approx(b, rel=1e-9)
        for edges in (250_000, 600_000, 1_000_000):
            assert model.predict_seconds(edges) == pytest.approx(
                a * edges + b, rel=1e-9
            )

    def test_stage_ratios_preserved(self):
        model = CostModel.calibrate(synthetic_payload(), graph="LJ")
        base = CostModel()
        # rescaling keeps the relative stage weights of the default table
        ratio = model.cost("sssp") / base.cost("sssp")
        assert ratio > 0
        for stage in DEFAULT_COSTS:
            assert model.cost(stage) == pytest.approx(
                base.cost(stage) * ratio, rel=1e-9
            )
        assert model.default == pytest.approx(base.default * ratio, rel=1e-9)

    def test_uncalibrated_predict_rejected(self):
        with pytest.raises(ValueError, match="calibrat"):
            CostModel().predict_seconds(1000)

    def test_too_few_rows_rejected(self):
        payload = {"rows": synthetic_payload()["rows"][:1]}
        with pytest.raises(ValueError, match=">= 2"):
            CostModel.calibrate(payload, graph="LJ")

    def test_degenerate_edges_rejected(self):
        rows = [
            {"algo": "Yen", "graph": "LJ", "variant": "workspace",
             "edges_relaxed": 1000, "wall_seconds": w}
            for w in (1.0, 2.0)
        ]
        with pytest.raises(ValueError, match="distinct"):
            CostModel.calibrate({"rows": rows}, graph="LJ")

    @pytest.mark.parametrize("graph", ["LJ", "WL"])
    def test_fits_the_committed_bench_per_family(self, graph):
        """Fit → predict within tolerance on the fitting rows of the
        repo's own ``BENCH_hot_path.json``.  The tolerance is loose
        (20%) because the non-negative intercept clamp biases the fit
        when the unclamped intercept would be negative — exactness is
        pinned by the synthetic round-trip test above."""
        payload = json.loads(HOT_PATH.read_text())
        model = CostModel.calibrate(payload, graph=graph, variant="workspace")
        assert model.per_edge_seconds > 0
        rows = [
            r for r in payload["rows"]
            if r["graph"] == graph
            and r["algo"] in ("Yen", "OptYen")
            and r.get("variant") == "workspace"
        ]
        assert len(rows) >= 2
        for r in rows:
            predicted = model.predict_seconds(r["edges_relaxed"])
            assert predicted == pytest.approx(r["wall_seconds"], rel=0.2)
