"""Arrival processes: statistical sanity + determinism.

The statistical assertions use wide tolerances over large samples —
they pin the *model* (right mean, right modulation), not the RNG.
Determinism is exact: same seed, same stream.
"""

from random import Random

import pytest

from repro.load.arrivals import (
    ClosedLoop,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    arrival_process,
)


class TestPoisson:
    def test_mean_interarrival(self):
        rate = 500.0
        times = list(PoissonArrivals(rate).arrivals(Random(1), horizon=40.0))
        assert len(times) > 10_000
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        assert mean == pytest.approx(1.0 / rate, rel=0.05)

    def test_strictly_increasing_below_horizon(self):
        times = list(PoissonArrivals(50.0).arrivals(Random(2), horizon=5.0))
        assert all(b > a for a, b in zip(times, times[1:]))
        assert all(0.0 < t < 5.0 for t in times)

    def test_same_seed_same_stream(self):
        a = list(PoissonArrivals(100.0).arrivals(Random(7), horizon=2.0))
        b = list(PoissonArrivals(100.0).arrivals(Random(7), horizon=2.0))
        assert a == b

    def test_rate_validated(self):
        with pytest.raises(ValueError, match="rate"):
            PoissonArrivals(0.0)

    def test_mean_rate(self):
        assert PoissonArrivals(123.0).mean_rate() == 123.0


class TestMMPP:
    proc = MMPPArrivals(rate_low=20.0, rate_high=400.0, dwell_low=0.2, dwell_high=0.05)

    def test_phases_alternate_starting_low(self):
        phases = list(self.proc.phases(Random(3), horizon=10.0))
        rates = [r for _, _, r in phases]
        assert rates[0] == 20.0
        assert all(
            r == (20.0 if i % 2 == 0 else 400.0) for i, r in enumerate(rates)
        )

    def test_dwell_means(self):
        # long horizon -> hundreds of phases; drop the horizon-clipped last
        phases = list(self.proc.phases(Random(4), horizon=300.0))[:-1]
        low = [e - s for i, (s, e, _) in enumerate(phases) if i % 2 == 0]
        high = [e - s for i, (s, e, _) in enumerate(phases) if i % 2 == 1]
        assert len(low) > 300 and len(high) > 300
        assert sum(low) / len(low) == pytest.approx(0.2, rel=0.15)
        assert sum(high) / len(high) == pytest.approx(0.05, rel=0.15)

    def test_arrivals_live_inside_phases(self):
        rng = Random(5)
        times = list(self.proc.arrivals(rng, horizon=3.0))
        assert times == sorted(times)
        assert all(0.0 < t < 3.0 for t in times)

    def test_mean_rate_is_dwell_weighted(self):
        # (20*0.2 + 400*0.05) / 0.25 = 96
        assert self.proc.mean_rate() == pytest.approx(96.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="rates"):
            MMPPArrivals(0.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError, match="dwell"):
            MMPPArrivals(1.0, 2.0, 0.0, 1.0)


class TestDiurnal:
    proc = DiurnalArrivals(base_rate=200.0, amplitude=0.9, period=2.0)

    def test_rate_at_peak_and_trough(self):
        assert self.proc.rate_at(0.5) == pytest.approx(380.0)  # sin peak
        assert self.proc.rate_at(1.5) == pytest.approx(20.0)  # sin trough

    def test_peak_half_outdraws_trough_half(self):
        times = list(self.proc.arrivals(Random(6), horizon=20.0))
        in_peak = sum(1 for t in times if (t % 2.0) < 1.0)
        in_trough = len(times) - in_peak
        assert in_peak > 3 * in_trough  # 90% modulation is a huge contrast

    def test_mean_rate_averages_out(self):
        times = list(self.proc.arrivals(Random(8), horizon=50.0))
        assert len(times) / 50.0 == pytest.approx(200.0, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalArrivals(10.0, 1.5, 1.0)


class TestClosedLoop:
    def test_spec_and_mean_rate(self):
        pop = ClosedLoop(users=300, think_mean=0.5)
        assert pop.mean_rate() == pytest.approx(600.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="users"):
            ClosedLoop(users=0, think_mean=1.0)
        with pytest.raises(ValueError, match="think_mean"):
            ClosedLoop(users=5, think_mean=0.0)


class TestFactory:
    def test_builds_each_kind(self):
        assert arrival_process({"kind": "poisson", "rate": 5.0}) == PoissonArrivals(5.0)
        assert isinstance(
            arrival_process(
                {"kind": "mmpp", "rate_low": 1.0, "rate_high": 2.0,
                 "dwell_low": 1.0, "dwell_high": 1.0}
            ),
            MMPPArrivals,
        )
        assert isinstance(
            arrival_process({"kind": "closed", "users": 3, "think_mean": 1.0}),
            ClosedLoop,
        )

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown traffic kind"):
            arrival_process({"kind": "fractal"})

    def test_spec_not_mutated(self):
        spec = {"kind": "poisson", "rate": 5.0}
        arrival_process(spec)
        assert spec == {"kind": "poisson", "rate": 5.0}
