"""Query mixes and the JSONL trace round trip."""

from random import Random

import numpy as np
import pytest

from repro.graph.suite import suite_graph
from repro.load.arrivals import PoissonArrivals
from repro.load.mixes import (
    HotspotMix,
    KSampler,
    UniformMix,
    largest_scc,
    make_mix,
)
from repro.load.trace import dump_trace, load_trace, record_open_loop


@pytest.fixture(scope="module")
def graph():
    return suite_graph("LJ", "tiny")


class TestKSampler:
    def test_uniform_bounds(self):
        s = KSampler(dist="uniform", k_min=2, k_max=5)
        rng = Random(0)
        draws = {s.sample(rng) for _ in range(500)}
        assert draws == {2, 3, 4, 5}

    def test_small_heavy_is_small_heavy(self):
        s = KSampler(dist="small_heavy", k_min=1, k_max=8, p=0.5)
        rng = Random(1)
        draws = [s.sample(rng) for _ in range(4000)]
        assert min(draws) == 1 and max(draws) <= 8
        assert draws.count(1) > 4 * draws.count(8)  # geometric mass up front

    def test_validation(self):
        with pytest.raises(ValueError, match="k distribution"):
            KSampler(dist="zipf")
        with pytest.raises(ValueError, match="k_min"):
            KSampler(k_min=0)
        with pytest.raises(ValueError, match="p must"):
            KSampler(p=1.0)


class TestUniformMix:
    def test_bounds_and_distinct_endpoints(self, graph):
        mix = UniformMix(graph, k=KSampler(k_min=1, k_max=4))
        rng = Random(2)
        n = graph.num_vertices
        for _ in range(2000):
            s, t, k = mix.sample(rng)
            assert 0 <= s < n and 0 <= t < n and s != t
            assert 1 <= k <= 4

    def test_target_roughly_uniform(self, graph):
        mix = UniformMix(graph)
        rng = Random(3)
        counts = np.zeros(graph.num_vertices, dtype=int)
        for _ in range(20_000):
            _, t, _ = mix.sample(rng)
            counts[t] += 1
        # no vertex should soak up much more than its uniform share
        assert counts.max() < 5 * counts.mean()


class TestHotspotMix:
    def test_bounds_and_distinct_endpoints(self, graph):
        mix = HotspotMix(graph, exponent=1.5)
        rng = Random(4)
        n = graph.num_vertices
        for _ in range(2000):
            s, t, k = mix.sample(rng)
            assert 0 <= s < n and 0 <= t < n and s != t

    def test_targets_follow_in_degree(self, graph):
        mix = HotspotMix(graph, exponent=1.0)
        rng = Random(5)
        counts = np.zeros(graph.num_vertices, dtype=int)
        for _ in range(20_000):
            _, t, _ = mix.sample(rng)
            counts[t] += 1
        in_degree = np.bincount(graph.indices, minlength=graph.num_vertices)
        top = np.argsort(in_degree)[-len(in_degree) // 10 :]
        share = counts[top].sum() / counts.sum()
        uniform_share = len(top) / graph.num_vertices
        # a preferential-attachment top decile holds far more than 10% of
        # the in-degree mass, so the traffic share must follow
        assert share > 2 * uniform_share


class TestMakeMix:
    def test_specs(self, graph):
        assert isinstance(make_mix(graph, {"kind": "uniform"}), UniformMix)
        hot = make_mix(
            graph,
            {"kind": "hotspot", "exponent": 2.0, "k": {"dist": "uniform", "k_max": 3}},
        )
        assert isinstance(hot, HotspotMix)
        assert hot.k_sampler.k_max == 3

    def test_unknown_kind(self, graph):
        with pytest.raises(ValueError, match="unknown mix kind"):
            make_mix(graph, {"kind": "mystery"})


class TestTraceRoundTrip:
    def test_dump_load_identity(self, graph, tmp_path):
        queries = record_open_loop(
            PoissonArrivals(rate=300.0),
            UniformMix(graph),
            horizon=0.5,
            seed=11,
            timeout=0.05,
        )
        assert queries, "horizon should produce arrivals"
        path = dump_trace(queries, tmp_path / "t.jsonl", source={"why": "test"})
        loaded = load_trace(path)
        # Query is a frozen dataclass: == compares every field, and JSON
        # round-trips floats bit-for-bit — the schedule survives exactly.
        assert loaded == queries

    def test_record_is_deterministic(self, graph):
        kwargs = dict(horizon=0.3, seed=9)
        a = record_open_loop(PoissonArrivals(100.0), UniformMix(graph), **kwargs)
        b = record_open_loop(PoissonArrivals(100.0), UniformMix(graph), **kwargs)
        assert a == b

    def test_version_check(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "meta", "version": 99}\n')
        with pytest.raises(ValueError, match="version-1"):
            load_trace(bad)

    def test_max_queries_cap(self, graph):
        queries = record_open_loop(
            PoissonArrivals(1000.0), UniformMix(graph), horizon=5.0, seed=1,
            max_queries=25,
        )
        assert len(queries) == 25
        assert [q.request_id for q in queries] == [f"q{i:06d}" for i in range(25)]


class TestSccRestriction:
    def test_largest_scc_is_mutually_reachable(self, graph):
        ids = set(largest_scc(graph).tolist())
        assert 2 <= len(ids) <= graph.num_vertices
        # spot-check: a handful of pairs inside the component connect
        from repro.sssp.dijkstra import dijkstra
        import numpy as np
        sample = sorted(ids)[:3]
        for s in sample:
            dist = dijkstra(graph, s).dist
            for t in sample:
                assert np.isfinite(dist[t]), (s, t)

    def test_spec_flag_confines_endpoints(self, graph):
        ids = set(largest_scc(graph).tolist())
        mix = make_mix(graph, {"kind": "hotspot", "scc": True})
        rng = Random(5)
        for _ in range(200):
            s, t, k = mix.sample(rng)
            assert s in ids and t in ids and s != t

    def test_uniform_mix_subset(self, graph):
        ids = largest_scc(graph)
        mix = UniformMix(graph, vertices=ids)
        rng = Random(7)
        seen = {mix.sample(rng)[:2] for _ in range(300)}
        flat = {v for pair in seen for v in pair}
        assert flat <= set(ids.tolist())

    def test_scc_is_deterministic(self, graph):
        a = largest_scc(graph)
        b = largest_scc(graph)
        assert a.tolist() == b.tolist()
