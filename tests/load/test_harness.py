"""The discrete-event harness: virtual time, queueing, both loop shapes.

Everything here runs on :class:`SimClock` — no assertion in this file
depends on the wall clock, which is the point of the subsystem.
"""

from random import Random

import pytest

from repro.graph.suite import suite_graph
from repro.load.arrivals import ClosedLoop, PoissonArrivals
from repro.load.harness import (
    DISPOSITIONS,
    EXPIRED,
    SHED,
    LoadHarness,
    QueryLog,
    disposition_summary,
    percentile,
)
from repro.load.mixes import KSampler, UniformMix
from repro.load.simclock import CostModel, SimClock, virtual_time
from repro.load.trace import record_open_loop
from repro.serve.query import Query
from repro.serve.server import DEGRADED, QueryServer


@pytest.fixture(scope="module")
def graph():
    return suite_graph("LJ", "tiny")


def make_harness(graph, **kwargs):
    server_kwargs = kwargs.pop("server_kwargs", {})
    server = QueryServer(graph, max_in_flight=kwargs.pop("max_in_flight", 4),
                         **server_kwargs)
    mix = UniformMix(graph, k=KSampler(k_max=4))
    return LoadHarness(server, mix, **kwargs)


class TestSimClock:
    def test_advance_and_jump(self):
        clock = SimClock()
        clock.advance(1.5)
        assert clock.now() == 1.5
        clock.jump_to(0.25)  # backwards jumps are the harness aligning
        assert clock() == 0.25
        with pytest.raises(ValueError, match="backwards"):
            clock.advance(-0.1)

    def test_sleep_clamps_negative(self):
        clock = SimClock()
        clock.sleep(-1.0)
        assert clock.now() == 0.0


class TestCostModel:
    def test_longest_prefix_wins(self):
        model = CostModel.from_dict(
            {"prune": 1.0, "prune.scan": 2.0}, default=0.5
        )
        assert model.cost("prune.scan") == 2.0
        assert model.cost("prune.scan.block") == 2.0
        assert model.cost("prune.masks") == 1.0
        assert model.cost("yen") == 0.5

    def test_exact_match_is_not_a_prefix_match(self):
        model = CostModel.from_dict({"sssp": 3.0})
        assert model.cost("sssp") == 3.0
        assert model.cost("ssspx") == model.default

    def test_virtual_time_advances_per_checkpoint(self, graph):
        clock = SimClock()
        server = QueryServer(graph)
        with virtual_time(clock, CostModel()):
            res = server.serve(Query(0, 5, 2))
        assert res.service_time > 0.0
        assert clock.ticks > 0

    def test_service_time_is_deterministic(self, graph):
        def once():
            clock = SimClock()
            with virtual_time(clock, CostModel()):
                return QueryServer(graph).serve(Query(0, 5, 2)).service_time

        assert once() == once()


class TestOpenLoop:
    def test_run_is_deterministic(self, graph):
        def once():
            h = make_harness(graph, timeout=0.1, seed=42)
            return h.run(PoissonArrivals(300.0), horizon=0.2).metrics()

        assert once() == once()

    def test_overload_sheds(self, graph):
        h = make_harness(graph, timeout=0.5, seed=1, max_in_flight=2)
        report = h.run(PoissonArrivals(3000.0), horizon=0.1, max_queries=150)
        assert report.count(SHED) > 0
        # the station never holds more than workers + queue slots
        assert report.peak_in_flight <= 2

    def test_light_load_never_sheds(self, graph):
        h = make_harness(graph, timeout=1.0, seed=2)
        report = h.run(PoissonArrivals(20.0), horizon=0.5)
        assert report.count(SHED) == 0
        assert report.count("complete") > 0

    def test_queue_absorbs_then_expires(self, graph):
        # queue_depth > 0: bursts wait instead of shedding, and waiters
        # whose budget dies in the queue expire without touching a worker
        h = make_harness(
            graph, timeout=0.01, seed=3, max_in_flight=2, queue_depth=8
        )
        report = h.run(PoissonArrivals(3000.0), horizon=0.1, max_queries=150)
        assert report.count(EXPIRED) > 0
        assert report.peak_in_flight <= 2 + 8
        for log in report.logs:
            if log.disposition == EXPIRED:
                assert log.queue_time >= 0.01
                assert log.service_time == 0.0

    def test_latency_decomposes(self, graph):
        h = make_harness(graph, timeout=0.5, seed=4, max_in_flight=2,
                         queue_depth=4)
        report = h.run(PoissonArrivals(800.0), horizon=0.1, max_queries=80)
        served = [log for log in report.logs if log.served]
        assert served
        for log in served:
            assert log.latency == pytest.approx(
                log.queue_time + log.service_time, abs=1e-12
            )

    def test_tight_budget_split_degrades(self, graph):
        h = make_harness(
            graph,
            timeout=0.012,
            seed=5,
            server_kwargs={"tier1_budget_fraction": 0.4},
        )
        report = h.run(PoissonArrivals(200.0), horizon=0.3)
        assert report.count(DEGRADED) > 0

    def test_needs_a_mix(self, graph):
        h = LoadHarness(QueryServer(graph), mix=None)
        with pytest.raises(ValueError, match="query mix"):
            h.run(PoissonArrivals(10.0), horizon=0.1)


class TestClosedLoop:
    def test_in_flight_never_exceeds_population(self, graph):
        # 3 users against 64 worker slots: concurrency is bounded by the
        # population, the defining closed-loop property
        h = make_harness(graph, timeout=1.0, seed=6, max_in_flight=64)
        report = h.run(
            ClosedLoop(users=3, think_mean=0.001), horizon=0.3
        )
        assert report.logs
        assert report.peak_in_flight <= 3

    def test_large_population_stays_bounded(self, graph):
        h = make_harness(graph, timeout=0.5, seed=7, max_in_flight=8)
        report = h.run(
            ClosedLoop(users=50_000, think_mean=5.0),
            horizon=0.01,
            max_queries=60,
        )
        assert report.logs
        assert report.peak_in_flight <= 8  # station bound binds first

    def test_deterministic(self, graph):
        def once():
            h = make_harness(graph, timeout=0.2, seed=8)
            return h.run(
                ClosedLoop(users=10, think_mean=0.01), horizon=0.1
            ).metrics()

        assert once() == once()


class TestTraceReplayEquivalence:
    def test_replay_matches_live_generation(self, graph):
        """Record → replay drives the station identically to live
        generation from the same seed (the two share RNG streams)."""
        process = PoissonArrivals(300.0)
        mix_args = dict(horizon=0.15, seed=21, timeout=0.05)

        live = make_harness(graph, timeout=0.05, seed=21)
        live_report = live.run(process, horizon=0.15)

        queries = record_open_loop(
            process, UniformMix(graph, k=KSampler(k_max=4)), **mix_args
        )
        replay = make_harness(graph, timeout=0.05, seed=21)
        replay_report = replay.run(queries, horizon=0.15)

        def key(report):
            return [
                (log.request_id, log.issued_at, log.disposition, log.latency)
                for log in report.logs
            ]

        assert key(live_report) == key(replay_report)


class TestMetrics:
    def test_percentile_nearest_rank(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        assert percentile(vals, 50) == 2.0
        assert percentile(vals, 99) == 4.0
        assert percentile(vals, 100) == 4.0
        assert percentile([], 50) is None
        with pytest.raises(ValueError):
            percentile(vals, 0.0)

    def test_rates_partition(self, graph):
        h = make_harness(graph, timeout=0.02, seed=9, max_in_flight=2)
        report = h.run(PoissonArrivals(1000.0), horizon=0.1, max_queries=120)
        m = report.metrics()
        total = sum(m[f"{d}_rate"] for d in DISPOSITIONS)
        assert total == pytest.approx(1.0, abs=1e-6)
        assert m["queries"] == len(report.logs)


class TestDispositionSummary:
    @staticmethod
    def log(rid, disposition, *, hedges=0):
        return QueryLog(
            request_id=rid, source=0, target=1, k=2, issued_at=0.0,
            disposition=disposition, hedges=hedges,
        )

    def test_counts_and_availability(self):
        logs = [
            self.log("a", "complete"),
            self.log("b", "degraded", hedges=1),
            self.log("c", "partial"),
            self.log("d", "failed"),
            self.log("e", SHED),
            self.log("f", EXPIRED),
        ]
        s = disposition_summary(logs)
        assert s["issued"] == 6
        assert s["answered"] == 3  # complete + degraded + partial
        assert s["availability"] == pytest.approx(0.5)
        assert s["hedged"] == 1
        assert {d for d in DISPOSITIONS} <= set(s)

    def test_server_shed_counter_merged(self):
        """Admission-control sheds never reach the harness log; the
        server counter folds them into the same ledger."""
        logs = [self.log("a", "complete")]
        s = disposition_summary(logs, {"shed": 3, "complete": 1})
        assert s["issued"] == 4
        assert s[SHED] == 3
        assert s["availability"] == pytest.approx(0.25)

    def test_empty_run_is_available(self):
        s = disposition_summary([])
        assert s["issued"] == 0
        assert s["availability"] == 1.0

    def test_report_wrapper_matches(self, graph):
        h = make_harness(graph, timeout=0.02, seed=9, max_in_flight=2)
        report = h.run(PoissonArrivals(800.0), horizon=0.1, max_queries=80)
        assert report.dispositions() == disposition_summary(report.logs)
        merged = report.dispositions({"shed": 2})
        assert merged["issued"] == disposition_summary(report.logs)["issued"] + 2
