"""The experiment runner: schema, seeding, byte-identical reruns, CLI."""

import json

import pytest

from repro.load.harness import DISPOSITIONS
from repro.load.runner import (
    RunTable,
    ServerConfig,
    capacity_summary,
    cell_seed,
    run_table,
    tiny_table,
)

#: a deliberately small grid so the full runner executes in a second or
#: two; 1 traffic x 1 graph x 2 configs x 2 reps = 4 cells
MICRO = RunTable(
    name="micro",
    traffic=(("poisson", {"kind": "poisson", "rate": 500.0}),),
    graphs=("LJ",),
    configs=(
        ServerConfig(name="relaxed", timeout=0.5, max_in_flight=2),
        ServerConfig(
            name="tight", timeout=0.012, max_in_flight=2,
            tier1_budget_fraction=0.4,
        ),
    ),
    scale="tiny",
    repetitions=2,
    horizon=0.08,
    seed=13,
    max_queries=60,
)


@pytest.fixture(scope="module")
def payload():
    return run_table(MICRO)


class TestCellSeeds:
    def test_deterministic_and_distinct(self):
        seeds = {
            cell_seed(MICRO, label, graph, config.name, rep)
            for label, _, graph, config, rep in MICRO.cells()
        }
        assert len(seeds) == 4  # every cell decorrelated
        assert cell_seed(MICRO, "poisson", "LJ", "tight", 0) == cell_seed(
            MICRO, "poisson", "LJ", "tight", 0
        )

    def test_table_seed_shifts_every_cell(self):
        import dataclasses

        other = dataclasses.replace(MICRO, seed=14)
        assert cell_seed(MICRO, "poisson", "LJ", "tight", 0) != cell_seed(
            other, "poisson", "LJ", "tight", 0
        )


class TestPayloadSchema:
    def test_descriptor(self, payload):
        assert payload["benchmark"] == "serving"
        assert payload["table"] == "micro"
        assert payload["seed"] == 13
        assert set(payload["traffic"]) == {"poisson"}
        assert [c["name"] for c in payload["configs"]] == ["relaxed", "tight"]

    def test_rows(self, payload):
        rows = payload["rows"]
        assert len(rows) == 4
        required = {
            "traffic", "graph", "config", "rep", "seed", "offered_qps",
            "queries", "served", "throughput_qps", "goodput_qps",
            "latency_p50", "latency_p99", "latency_p999",
            "queue_p50", "queue_p99", "peak_in_flight", "counters",
        } | {f"{d}_rate" for d in DISPOSITIONS}
        for row in rows:
            assert required <= set(row)
            assert row["queries"] > 0

    def test_counters_attached(self, payload):
        for row in payload["rows"]:
            assert set(row["counters"]) == {"server", "trace"}
            served = row["counters"]["server"]
            assert sum(served[o] for o in ("complete", "degraded",
                                           "partial", "failed")) == row["served"]

    def test_tight_config_degrades(self, payload):
        tight = [r for r in payload["rows"] if r["config"] == "tight"]
        assert any(r["degraded_rate"] > 0 for r in tight)

    def test_json_serializable_and_reproducible(self, payload):
        again = run_table(MICRO)
        assert json.dumps(payload, indent=2) == json.dumps(again, indent=2)


class TestCapacitySummary:
    def test_renders_groups_and_tags(self, payload):
        text = capacity_summary(payload)
        assert "serving capacity" in text
        assert "poisson" in text and "tight" in text
        assert "DEGR" in text  # the tight config degraded somewhere

    def test_handles_missing_percentiles(self):
        empty = {
            "table": "t", "scale": "tiny", "seed": 0, "horizon": 1.0,
            "repetitions": 1,
            "rows": [{
                "traffic": "p", "graph": "LJ", "config": "c",
                "offered_qps": 1.0, "throughput_qps": 0.0,
                "latency_p50": None, "latency_p99": None,
                "latency_p999": None, "shed_rate": 1.0,
                "degraded_rate": 0.0, "partial_rate": 0.0,
                "failed_rate": 0.0,
            }],
        }
        text = capacity_summary(empty)
        assert "SHED" in text and "-" in text


class TestStockTables:
    def test_tiny_table_shape(self):
        table = tiny_table(seed=3)
        cells = list(table.cells())
        assert len(cells) == 8  # 2 traffic x 2 graphs x 2 configs x 1 rep
        assert table.seed == 3


class TestCLI:
    def test_record_and_replay(self, tmp_path, capsys):
        from repro.load.cli import main

        trace = tmp_path / "t.jsonl"
        assert main([
            "record", "--pattern", "poisson", "--rate", "200",
            "--graph", "LJ", "--horizon", "0.1", "--seed", "4",
            "--out", str(trace),
        ]) == 0
        assert trace.exists()
        assert main([
            "replay", "--trace", str(trace), "--graph", "LJ",
            "--timeout", "0.05",
        ]) == 0
        out = capsys.readouterr().out
        assert '"queries"' in out

    def test_run_writes_outputs(self, tmp_path, capsys, monkeypatch):
        import repro.load.cli as cli

        monkeypatch.setitem(cli.TABLES, "micro", lambda seed=0: MICRO)
        json_path = tmp_path / "bench.json"
        txt_path = tmp_path / "capacity.txt"
        assert main_args_run(cli, json_path, txt_path) == 0
        payload = json.loads(json_path.read_text())
        assert payload["benchmark"] == "serving"
        assert txt_path.read_text().startswith("serving capacity")


def main_args_run(cli, json_path, txt_path):
    return cli.main([
        "run", "--table", "micro", "--json", str(json_path),
        "--summary", str(txt_path), "--quiet",
    ])


#: one replicated cell next to a single-server cell — the replicas axis
REPLICATED = RunTable(
    name="replicated",
    traffic=(("poisson", {"kind": "poisson", "rate": 400.0}),),
    graphs=("LJ",),
    configs=(
        ServerConfig(name="single", timeout=0.5, max_in_flight=2),
        ServerConfig(name="fabric2", timeout=0.5, max_in_flight=2, replicas=2),
    ),
    scale="tiny",
    repetitions=1,
    horizon=0.12,
    mix={"kind": "hotspot", "scc": True, "k": {"k_max": 4}},
    seed=7,
    max_queries=50,
)


class TestReplicasAxis:
    @pytest.fixture(scope="class")
    def rep_payload(self):
        return run_table(REPLICATED)

    def test_rows_carry_the_axis(self, rep_payload):
        by_config = {r["config"]: r for r in rep_payload["rows"]}
        assert by_config["single"]["replicas"] == 1
        assert by_config["fabric2"]["replicas"] == 2
        assert [c["replicas"] for c in rep_payload["configs"]] == [1, 2]

    def test_unified_dispositions_on_every_row(self, rep_payload):
        for row in rep_payload["rows"]:
            d = row["dispositions"]
            assert {k for k in DISPOSITIONS} <= set(d)
            assert {"issued", "answered", "availability", "hedged"} <= set(d)
            assert d["issued"] >= row["queries"]
            assert 0.0 <= d["availability"] <= 1.0

    def test_replicated_cell_has_fabric_metrics(self, rep_payload):
        row = next(r for r in rep_payload["rows"] if r["config"] == "fabric2")
        assert {"availability", "kills", "spills", "heartbeats"} <= set(row)
        assert row["kills"] == 0

    def test_replicated_cell_reproducible(self, rep_payload):
        again = run_table(REPLICATED)
        assert json.dumps(rep_payload, indent=2) == json.dumps(again, indent=2)
