"""Smoke tests: every experiment function produces a well-formed report at
tiny scale (full-scale regeneration lives in benchmarks/)."""

import pytest

from repro.bench import experiments
from repro.bench.harness import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(
        scale="tiny", pairs_per_graph=1, deadline_seconds=30
    )


class TestReports:
    def test_fig01(self, runner):
        rep = experiments.fig01_coverage(runner, ks=(4, 16))
        assert [r[0] for r in rep.rows] == [4, 16]
        for _, cv, ce in rep.rows:
            assert 0 < cv <= 100
            assert 0 < ce <= 100
        # coverage grows with K
        assert rep.rows[1][1] >= rep.rows[0][1]
        # the report embeds an ASCII rendering of the figure
        assert "covered V %" in rep.notes

    def test_fig04(self, runner):
        rep = experiments.fig04_pruning(runner, ks=(4,))
        assert rep.rows[-1][0] == "AVG"
        assert len(rep.rows) == 9  # 8 graphs + AVG
        for row in rep.rows:
            assert 0 <= row[1] <= 100

    def test_fig06(self, runner):
        rep = experiments.fig06_compaction(
            runner, graph_name="LJ", fractions=(0.01, 1.0), k=4
        )
        assert len(rep.rows) == 2
        assert all(len(r) == 7 for r in rep.rows)

    def test_fig08(self, runner):
        rep = experiments.fig08_ablation(runner, ks=(4,))
        assert rep.rows[-1][0] == "AVG"
        assert all(r[1] > 0 for r in rep.rows)

    def test_fig09(self, runner):
        rep = experiments.fig09_shared_scaling(
            runner, k=4, threads=(1, 4, 16)
        )
        for row in rep.rows:
            assert row[1] == pytest.approx(1.0)  # 1 thread = baseline

    def test_fig10(self, runner):
        rep = experiments.fig10_distributed_scaling(
            runner, k=4, nodes=(1, 4)
        )
        for row in rep.rows:
            assert row[1] == pytest.approx(1.0)
        assert "GTEPS" in rep.notes

    def test_fig11(self, runner):
        rep = experiments.fig11_k_sweep(
            runner, ks=(2, 4), methods=("OptYen", "PeeK")
        )
        assert len(rep.rows) == 16  # 8 graphs x 2 methods
        assert "PeeK" in rep.notes

    def test_fig12(self, runner):
        rep = experiments.fig12_terrace(
            runner, graph_name="LJ", fractions=(0.01, 1.0)
        )
        assert len(rep.rows) == 2
        for row in rep.rows:
            assert row[1] in ("regeneration", "edge-swap", "status-array")

    def test_table2(self, runner):
        rep = experiments.table2_parallel(
            runner, ks=(4,), methods=("OptYen", "PeeK")
        )
        assert len(rep.rows) == 2
        assert rep.header[2:] == list(runner.graph_names())

    def test_table3(self, runner):
        rep = experiments.table3_serial(
            runner, ks=(4,), methods=("OptYen", "PeeK")
        )
        assert len(rep.rows) == 2

    def test_save(self, runner, tmp_path):
        rep = experiments.fig04_pruning(runner, ks=(4,))
        path = rep.save(tmp_path)
        assert path.exists()
        assert "Figure 4" in path.read_text()

    def test_registry_complete(self):
        assert set(experiments.ALL_EXPERIMENTS) == {
            "fig01", "fig04", "fig06", "fig08", "fig09", "fig10",
            "fig11", "fig12", "table2", "table3", "ftsweep",
        }
