"""Tests for the profiling helpers."""

import numpy as np
import pytest

from repro.bench.profiling import profile_to_text, stage_breakdown
from repro.core.peek import peek_ksp
from tests.conftest import random_reachable_pair


class TestStageBreakdown:
    def test_matches_pipeline_results(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=61)
        bd = stage_breakdown(medium_er, s, t, 5)
        ref = peek_ksp(medium_er, s, t, 5)
        assert np.allclose(bd.distances, ref.distances)
        assert bd.strategy in ("regeneration", "edge-swap", "status-array")

    def test_times_positive_and_consistent(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=61)
        bd = stage_breakdown(medium_er, s, t, 5)
        assert bd.prune_seconds >= 0
        assert bd.total_seconds == pytest.approx(
            bd.prune_seconds + bd.compact_seconds + bd.ksp_seconds
        )
        rows = bd.rows()
        assert len(rows) == 3
        assert abs(sum(share for _, _, share in rows) - 1.0) < 1e-6

    def test_kwargs_forwarded(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=61)
        bd = stage_breakdown(
            medium_er, s, t, 5, kernel="dijkstra",
            compaction_force="status-array",
        )
        assert bd.strategy == "status-array"

    def test_unknown_kwarg_rejected(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=61)
        with pytest.raises(TypeError):
            stage_breakdown(medium_er, s, t, 5, bogus=1)


class TestProfileToText:
    def test_produces_stats(self, small_grid):
        text = profile_to_text(peek_ksp, small_grid, 0, 63, 3, top=5)
        assert "function calls" in text
        assert "cumulative" in text
