"""Unit tests for the ASCII chart renderer."""

from repro.bench.ascii_plot import bar_chart, line_chart


class TestLineChart:
    def test_contains_series_markers_and_legend(self):
        text = line_chart(
            [1, 2, 4, 8],
            {"PeeK": [1, 1.1, 1.2, 1.2], "Yen": [1, 4, 16, 64]},
            title="runtime vs K",
        )
        assert "runtime vs K" in text
        assert "o PeeK" in text
        assert "x Yen" in text
        assert "o" in text.splitlines()[1] or any(
            "o" in line for line in text.splitlines()
        )

    def test_log_scale_labels(self):
        text = line_chart(
            [1, 10], {"t": [0.001, 1000.0]}, logy=True
        )
        assert "1e+03" in text or "1000" in text

    def test_flat_series_no_crash(self):
        text = line_chart([1, 2], {"flat": [5.0, 5.0]})
        assert "flat" in text

    def test_empty_series(self):
        assert line_chart([], {}, title="t") == "t"


class TestBarChart:
    def test_bars_scale_to_peak(self):
        text = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("█") < lines[1].count("█")

    def test_unit_suffix(self):
        text = bar_chart(["x"], [97.5], unit="%")
        assert "97.5%" in text

    def test_zero_values(self):
        text = bar_chart(["z"], [0.0])
        assert "z" in text

    def test_empty(self):
        assert bar_chart([], [], title="T") == "T"
