"""Unit tests for the experiment runner."""

import numpy as np
import pytest

from repro.bench.harness import ExperimentRunner, RunRecord
from repro.errors import ReproError


@pytest.fixture
def runner():
    return ExperimentRunner(
        scale="tiny", pairs_per_graph=2, deadline_seconds=30
    )


class TestRunner:
    def test_graph_and_pairs_cached_consistently(self, runner):
        assert runner.graph("R21") is runner.graph("R21")
        assert runner.pairs("R21") == runner.pairs("R21")

    def test_time_run_success(self, runner):
        s, t = runner.pairs("R21")[0]
        rec = runner.time_run("PeeK", "R21", s, t, 4)
        assert rec.ok
        assert rec.seconds > 0
        assert len(rec.result.paths) <= 4

    def test_time_run_timeout(self, runner):
        fast_runner = ExperimentRunner(
            scale="tiny", pairs_per_graph=1, deadline_seconds=0.0
        )
        s, t = fast_runner.pairs("LJ")[0]
        rec = fast_runner.time_run("Yen", "LJ", s, t, 64)
        assert rec.timed_out
        assert not rec.ok

    def test_average_seconds(self, runner):
        mean, records = runner.average_seconds("OptYen", "R21", 4)
        assert mean is not None and mean > 0
        assert len(records) == 2

    def test_same_pairs_for_all_methods(self, runner):
        recs = []
        for method in ("Yen", "PeeK"):
            for s, t in runner.pairs("R21"):
                recs.append(runner.time_run(method, "R21", s, t, 4))
        runner.check_same_distances(recs)  # must not raise

    def test_mismatch_detected(self, runner):
        s, t = runner.pairs("R21")[0]
        a = runner.time_run("Yen", "R21", s, t, 4)
        b = runner.time_run("PeeK", "R21", s, t, 4)
        b.result.paths = b.result.paths[:1]  # corrupt one record
        with pytest.raises(ReproError):
            runner.check_same_distances([a, b])

    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        monkeypatch.setenv("REPRO_PAIRS", "3")
        monkeypatch.setenv("REPRO_DEADLINE", "12")
        r = ExperimentRunner()
        assert r.scale == "tiny"
        assert r.pairs_per_graph == 3
        assert r.deadline_seconds == 12.0

    def test_run_callable(self, runner):
        secs, out = runner.run_callable(lambda: 41 + 1)
        assert out == 42
        assert secs >= 0
