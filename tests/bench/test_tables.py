"""Unit tests for table rendering."""

from repro.bench.tables import format_cell, format_markdown, format_table


class TestFormatCell:
    def test_float(self):
        assert format_cell(1.2345) == "1.23"
        assert format_cell(1.2345, digits=3) == "1.234"

    def test_thousands(self):
        assert format_cell(2168.0) == "2,168"

    def test_none_is_hyphen(self):
        assert format_cell(None) == "-"

    def test_nan_is_hyphen(self):
        assert format_cell(float("nan")) == "-"

    def test_string_passthrough(self):
        assert format_cell("PeeK") == "PeeK"

    def test_int(self):
        assert format_cell(42) == "42"


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(
            ["graph", "time"], [["R21", 1.5], ["GT", None]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "graph" in lines[1]
        assert "-" in lines[2]
        assert "R21" in lines[3]
        assert "-" in lines[4]  # the None cell

    def test_star_marks_column_minimum(self):
        text = format_table(
            ["m", "a", "b"],
            [["x", 2.0, 1.0], ["y", 1.0, 3.0]],
            star_min_columns=True,
        )
        assert "1.00*" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestMarkdown:
    def test_structure(self):
        md = format_markdown(["a", "b"], [[1, 2.5]])
        lines = md.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2.50 |"
