"""The Fig 6/12 workload constructor must never drop the K shortest paths."""

import numpy as np
import pytest

from repro.bench.experiments import _keep_masks_for_fraction
from repro.graph.generators import erdos_renyi
from repro.ksp.optyen import OptYenKSP
from tests.conftest import random_reachable_pair


@pytest.fixture(scope="module")
def case():
    g = erdos_renyi(120, 4.0, seed=71)
    s, t = random_reachable_pair(g, seed=1)
    return g, s, t


@pytest.mark.parametrize("fraction", [0.001, 0.05, 0.5, 1.0])
def test_paths_protected_at_any_fraction(case, fraction):
    g, s, t = case
    k = 6
    keep_v, keep_e = _keep_masks_for_fraction(g, s, t, k, fraction)
    ref = OptYenKSP(g, s, t).run(k)
    src = g.edge_sources()
    for p in ref.paths:
        assert keep_v[list(p.vertices)].all()
        for a, b in p.edges():
            lo, hi = g.edge_range(a)
            assert any(
                keep_e[e] and g.indices[e] == b for e in range(lo, hi)
            )


def test_fraction_respected_approximately(case):
    g, s, t = case
    keep_v, keep_e = _keep_masks_for_fraction(g, s, t, 4, 0.5)
    got = keep_e.sum() / g.num_edges
    assert 0.45 <= got <= 0.6


def test_full_fraction_keeps_everything(case):
    g, s, t = case
    keep_v, keep_e = _keep_masks_for_fraction(g, s, t, 4, 1.0)
    assert keep_e.all()


def test_ksp_on_masked_graph_unchanged(case):
    """Keeping the protected paths means the top-K distances survive any
    random deletion the workload constructor performs."""
    from repro.core.compaction import compact_regenerate

    g, s, t = case
    k = 5
    ref = OptYenKSP(g, s, t).run(k).distances
    keep_v, keep_e = _keep_masks_for_fraction(g, s, t, k, 0.02)
    regen = compact_regenerate(g, keep_v, keep_e)
    inner = OptYenKSP(
        regen.graph, regen.map_vertex(s), regen.map_vertex(t)
    )
    got = inner.run(k).distances
    # remnant ⊆ original bounds each rank from below; the protected paths
    # bound it from above — so the top-K distances are exactly preserved
    assert np.allclose(got, ref)