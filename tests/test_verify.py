"""Tests for the independent result verifier."""

import pytest

from repro.core.peek import peek_ksp
from repro.ksp.base import KSPResult
from repro.ksp.yen import yen_ksp
from repro.paths import Path
from repro.verify import (
    VerificationReport,
    enumerate_simple_paths,
    verify_ksp_result,
)


class TestEnumerate:
    def test_fan_graph_paths(self, fan_graph):
        paths = list(enumerate_simple_paths(fan_graph, 0, 4))
        assert len(paths) == 4
        dists = sorted(d for _, d in paths)
        assert dists == pytest.approx([2.0, 4.0, 6.0, 20.0])

    def test_limit_enforced(self, small_grid):
        with pytest.raises(RuntimeError):
            list(
                enumerate_simple_paths(
                    small_grid, 0, 63, limit=5, max_steps=50_000
                )
            )

    def test_step_guard_fires_on_dense_graph(self, small_grid):
        # even a huge path limit cannot make the DFS run unbounded
        with pytest.raises(RuntimeError, match="DFS steps"):
            list(
                enumerate_simple_paths(
                    small_grid, 0, 63, limit=10**9, max_steps=10_000
                )
            )

    def test_no_paths(self, fan_graph):
        assert list(enumerate_simple_paths(fan_graph, 4, 0)) == []


class TestLocalChecks:
    def test_valid_result_passes(self, fan_graph):
        res = yen_ksp(fan_graph, 0, 4, 4)
        assert verify_ksp_result(fan_graph, 0, 4, res)

    def test_peek_on_every_flavour(self, medium_er):
        from tests.conftest import random_reachable_pair

        s, t = random_reachable_pair(medium_er, seed=77)
        res = peek_ksp(medium_er, s, t, 6)
        report = verify_ksp_result(medium_er, s, t, res)
        assert report, str(report)

    def test_detects_wrong_endpoint(self, fan_graph):
        bad = KSPResult(paths=[Path(1.0, (1, 4))], k_requested=1)
        report = verify_ksp_result(fan_graph, 0, 4, bad)
        assert not report
        assert any("starts at" in f for f in report.failures)

    def test_detects_nonsimple(self, fan_graph):
        bad = KSPResult(paths=[Path(4.0, (0, 1, 0, 1, 4))], k_requested=1)
        assert not verify_ksp_result(fan_graph, 0, 4, bad)

    def test_detects_missing_edge(self, fan_graph):
        bad = KSPResult(paths=[Path(2.0, (0, 4))], k_requested=1)
        report = verify_ksp_result(fan_graph, 0, 4, bad)
        assert any("missing edge" in f for f in report.failures)

    def test_detects_wrong_distance(self, fan_graph):
        bad = KSPResult(paths=[Path(99.0, (0, 1, 4))], k_requested=1)
        report = verify_ksp_result(fan_graph, 0, 4, bad)
        assert any("edges sum" in f for f in report.failures)

    def test_detects_bad_order(self, fan_graph):
        bad = KSPResult(
            paths=[Path(4.0, (0, 2, 4)), Path(2.0, (0, 1, 4))],
            k_requested=2,
        )
        report = verify_ksp_result(fan_graph, 0, 4, bad)
        assert any("order" in f for f in report.failures)

    def test_detects_duplicates(self, fan_graph):
        p = Path(2.0, (0, 1, 4))
        report = verify_ksp_result(
            fan_graph, 0, 4, KSPResult(paths=[p, p], k_requested=2)
        )
        assert any("duplicates" in f for f in report.failures)


class TestCompleteness:
    def test_complete_result_passes(self, fan_graph):
        res = yen_ksp(fan_graph, 0, 4, 3)
        assert verify_ksp_result(
            fan_graph, 0, 4, res, check_completeness=True
        )

    def test_missed_path_detected(self, fan_graph):
        # pretend the 2nd shortest doesn't exist
        res = yen_ksp(fan_graph, 0, 4, 3)
        tampered = KSPResult(
            paths=[res.paths[0], res.paths[2]], k_requested=2
        )
        report = verify_ksp_result(
            fan_graph, 0, 4, tampered, check_completeness=True
        )
        assert not report

    def test_short_result_detected(self, fan_graph):
        res = yen_ksp(fan_graph, 0, 4, 1)
        res.k_requested = 3  # claims K=3, returned 1, but 4 paths exist
        report = verify_ksp_result(
            fan_graph, 0, 4, res, check_completeness=True
        )
        assert not report


def test_report_str_and_bool():
    r = VerificationReport()
    assert bool(r) and str(r) == "OK"
    r.fail("nope")
    assert not bool(r)
