"""The exception hierarchy contract: one catchable base class."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in (
        "GraphFormatError",
        "InvalidWeightError",
        "VertexError",
        "UnreachableTargetError",
        "KSPError",
        "PartitionError",
        "CommError",
    ):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError), name


def test_vertex_error_is_also_index_error():
    # so generic sequence-style code can catch it naturally
    assert issubclass(errors.VertexError, IndexError)


def test_one_except_clause_catches_library_errors(fan_graph):
    from repro import peek_ksp

    with pytest.raises(errors.ReproError):
        peek_ksp(fan_graph, 0, 0, 1)  # source == target -> KSPError


def test_ksp_timeout_is_ksp_error():
    from repro.ksp.base import KSPTimeout

    assert issubclass(KSPTimeout, errors.KSPError)
