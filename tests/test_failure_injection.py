"""Failure injection: degenerate graphs and adversarial inputs.

DESIGN.md's failure list: disconnected pairs, K beyond the number of simple
paths, self-loops, parallel edges, single-vertex graphs, zero/negative
weight rejection — every layer must fail loudly or degrade gracefully,
never return silently-wrong paths.
"""

import numpy as np
import pytest

from repro.core.peek import peek_ksp
from repro.core.pruning import k_upper_bound_prune
from repro.errors import (
    InvalidWeightError,
    KSPError,
    UnreachableTargetError,
    VertexError,
)
from repro.graph.build import from_edge_array, from_edge_list
from repro.ksp import ALGORITHMS, make_algorithm


@pytest.fixture
def disconnected():
    return from_edge_list(4, [(0, 1, 1.0), (2, 3, 1.0)])


class TestDisconnected:
    @pytest.mark.parametrize("method", sorted(ALGORITHMS))
    def test_every_algorithm_raises_unreachable(self, disconnected, method):
        with pytest.raises(UnreachableTargetError):
            make_algorithm(method, disconnected, 0, 3).run(2)

    def test_pruning_raises_unreachable(self, disconnected):
        with pytest.raises(UnreachableTargetError):
            k_upper_bound_prune(disconnected, 0, 3, 2)


class TestExhaustion:
    @pytest.mark.parametrize("method", sorted(ALGORITHMS))
    def test_k_beyond_path_count(self, fan_graph, method):
        res = make_algorithm(method, fan_graph, 0, 4).run(100)
        assert len(res.paths) == 4  # exactly the existing simple paths
        assert res.k_requested == 100

    def test_single_edge_graph(self):
        g = from_edge_list(2, [(0, 1, 2.0)])
        for method in ("Yen", "PeeK", "SB*"):
            res = make_algorithm(method, g, 0, 1).run(10)
            assert res.distances == [2.0]


class TestDegenerateInputs:
    def test_self_loops_ignored(self):
        g = from_edge_list(
            3,
            [(0, 0, 0.1), (0, 1, 1.0), (1, 1, 0.1), (1, 2, 1.0)],
            drop_self_loops=True,
        )
        res = peek_ksp(g, 0, 2, 3)
        assert res.distances == [2.0]

    def test_parallel_edges_collapse_to_min(self):
        g = from_edge_list(
            3, [(0, 1, 5.0), (0, 1, 1.0), (1, 2, 2.0), (1, 2, 9.0)]
        )
        res = peek_ksp(g, 0, 2, 5)
        assert res.distances == [3.0]

    def test_zero_weight_rejected(self):
        with pytest.raises(InvalidWeightError):
            from_edge_array(2, np.array([0]), np.array([1]), 0.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(InvalidWeightError):
            from_edge_array(2, np.array([0]), np.array([1]), -3.0)

    def test_inf_weight_rejected(self):
        with pytest.raises(InvalidWeightError):
            from_edge_array(2, np.array([0]), np.array([1]), float("inf"))

    def test_single_vertex_graph_queries(self):
        g = from_edge_list(1, [])
        with pytest.raises(KSPError):
            peek_ksp(g, 0, 0, 1)
        with pytest.raises(VertexError):
            peek_ksp(g, 0, 1, 1)


class TestAdversarialWeights:
    def test_extreme_weight_ratios(self):
        """1e-6 vs 1e6 weights: Δ-stepping bucketing must stay correct."""
        rng = np.random.default_rng(0)
        n, m = 40, 200
        w = np.where(rng.random(m) < 0.5, 1e-6, 1e6)
        g = from_edge_array(
            n, rng.integers(0, n, m), rng.integers(0, n, m), w
        )
        from repro.sssp import delta_stepping, dijkstra

        a = delta_stepping(g, 0).dist
        b = dijkstra(g, 0).dist
        assert np.allclose(
            np.nan_to_num(a, posinf=-1), np.nan_to_num(b, posinf=-1)
        )

    def test_peek_with_extreme_weights(self):
        rng = np.random.default_rng(1)
        n, m = 30, 150
        w = 10.0 ** rng.integers(-6, 6, size=m)
        g = from_edge_array(
            n, rng.integers(0, n, m), rng.integers(0, n, m), w.astype(float)
        )
        from repro.ksp.yen import yen_ksp
        from repro.sssp import dijkstra

        reach = np.flatnonzero(np.isfinite(dijkstra(g, 0).dist))
        reach = reach[reach != 0]
        if reach.size == 0:
            pytest.skip("draw happened to be disconnected")
        t = int(reach[0])
        assert np.allclose(
            peek_ksp(g, 0, t, 5).distances, yen_ksp(g, 0, t, 5).distances
        )


class TestSourceEqualsTarget:
    """One library-wide rule: ``source == target`` is a caller error.

    Every entry point — solve(), each registry algorithm, PeeK, BatchPeeK,
    the pruning stage, and the serving layer — raises :class:`KSPError`
    (never a silent empty result, never a zero-length "path")."""

    def test_solve_raises(self, diamond_graph):
        import repro

        with pytest.raises(KSPError):
            repro.solve(diamond_graph, 2, 2, k=3)

    @pytest.mark.parametrize("method", sorted(ALGORITHMS))
    def test_every_algorithm_raises(self, diamond_graph, method):
        with pytest.raises(KSPError):
            make_algorithm(method, diamond_graph, 2, 2)

    def test_peek_ksp_raises(self, diamond_graph):
        with pytest.raises(KSPError):
            peek_ksp(diamond_graph, 1, 1, 2)

    def test_pruning_raises(self, diamond_graph):
        with pytest.raises(KSPError):
            k_upper_bound_prune(diamond_graph, 1, 1, 2)

    def test_batch_peek_raises(self, diamond_graph):
        from repro.core.batch import BatchPeeK

        with pytest.raises(KSPError):
            BatchPeeK(diamond_graph).query(3, 3, 2)

    def test_query_server_raises(self, diamond_graph):
        from repro.serve import QueryServer

        with pytest.raises(KSPError):
            QueryServer(diamond_graph).serve(0, 0, 2)

    def test_vertex_error_wins_for_out_of_range(self, diamond_graph):
        """(n, n) is out of range first, equal second: VertexError."""
        import repro

        n = diamond_graph.num_vertices
        with pytest.raises(VertexError):
            repro.solve(diamond_graph, n, n, k=2)
