"""Opt-in medium-scale smoke tests (set ``REPRO_RUN_SLOW=1`` to enable).

The regular suite runs at tiny/small scale in seconds; these verify the
same invariants hold at the ``medium`` preset (30k-70k vertices, 10⁵–10⁶
edges, tens of seconds per test) — the configuration EXPERIMENTS.md's
scale-convergence argument relies on.
"""

import os

import numpy as np
import pytest

_opt_in = pytest.mark.skipif(
    not os.environ.get("REPRO_RUN_SLOW"),
    reason="set REPRO_RUN_SLOW=1 to run medium-scale smoke tests",
)


def slow(fn):
    """Mark ``slow`` (for ``-m "not slow"`` deselection) and env-gate."""
    return pytest.mark.slow(_opt_in(fn))


@slow
def test_medium_suite_generates():
    from repro.graph.suite import SUITE_NAMES, suite_graph

    for name in SUITE_NAMES:
        g = suite_graph(name, "medium")
        assert g.num_vertices >= 16_000
        assert g.num_edges > g.num_vertices


@slow
def test_medium_peek_agrees_with_optyen():
    from repro.core.peek import peek_ksp
    from repro.graph.suite import random_st_pairs, suite_graph
    from repro.ksp.optyen import optyen_ksp

    g = suite_graph("GT", "medium")
    (s, t), = random_st_pairs(g, 1, seed=5)
    ref = optyen_ksp(g, s, t, 8).distances
    got = peek_ksp(g, s, t, 8).distances
    assert np.allclose(got, ref)


@slow
def test_medium_pruning_converges_toward_paper():
    """The EXPERIMENTS.md convergence claim, as an executable check."""
    from repro.core.pruning import k_upper_bound_prune
    from repro.graph.suite import random_st_pairs, suite_graph

    g = suite_graph("GT", "medium")
    (s, t), = random_st_pairs(g, 1, seed=5)
    pr = k_upper_bound_prune(g, s, t, 8)
    assert pr.pruned_vertex_fraction > 0.99  # paper: 98.4% average
