"""Unit tests for the peek-bench CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiments == []
        assert args.out == "results"

    def test_experiment_args(self):
        args = build_parser().parse_args(
            ["table3", "--scale", "tiny", "--pairs", "1", "--deadline", "5"]
        )
        assert args.experiments == ["table3"]
        assert args.scale == "tiny"
        assert args.pairs == 1
        assert args.deadline == 5.0


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "fig01" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig04" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["figure99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_profile(self, capsys):
        assert main(["--profile", "LJ", "--scale", "tiny", "--k", "4"]) == 0
        out = capsys.readouterr().out
        assert "stage breakdown" in out
        assert "pruning" in out

    def test_suite_table(self, capsys):
        assert main(["--suite", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Benchmark suite" in out
        for name in ("R21", "GT", "WLU"):
            assert name in out

    def test_runs_one_experiment(self, tmp_path, capsys):
        rc = main(
            [
                "fig04",
                "--scale", "tiny",
                "--pairs", "1",
                "--deadline", "30",
                "--out", str(tmp_path),
            ]
        )
        assert rc == 0
        assert (tmp_path / "fig04_pruning.txt").exists()
        assert "Figure 4" in capsys.readouterr().out
