"""Opt-in: sanitizer overhead stays under 2x on the medium suite.

Set ``REPRO_RUN_SLOW=1`` to run (same gating as ``tests/test_medium_scale.py``).
"""

import os
import time

import pytest

_opt_in = pytest.mark.skipif(
    not os.environ.get("REPRO_RUN_SLOW"),
    reason="set REPRO_RUN_SLOW=1 to run medium-scale smoke tests",
)


def slow(fn):
    return pytest.mark.slow(_opt_in(fn))


@slow
def test_sanitized_medium_run_identical_and_under_2x():
    import repro
    from repro.graph.suite import random_st_pairs, suite_graph

    g = suite_graph("GT", "medium")
    (s, t), = random_st_pairs(g, 1, seed=5)

    t0 = time.perf_counter()
    plain = repro.solve(g, s, t, k=8)
    plain_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    checked = repro.solve(g, s, t, k=8, sanitize=True)
    checked_seconds = time.perf_counter() - t0

    # bitwise-identical results: the sanitizer only reads
    assert plain.distances == checked.distances
    assert [p.vertices for p in plain.paths] == [p.vertices for p in checked.paths]

    # the acceptance bound, with the solve itself dominating the budget
    assert checked_seconds < 2.0 * plain_seconds, (
        f"sanitized run took {checked_seconds:.2f}s vs {plain_seconds:.2f}s plain"
    )
