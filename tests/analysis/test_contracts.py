"""repro-contracts: fixture corpus, call graph, incremental mode, CLI."""

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis.contracts.analyzer import analyze_paths
from repro.analysis.contracts.callgraph import build_callgraph
from repro.analysis.contracts.cli import main
from repro.analysis.contracts.config import (
    AuditGroup,
    ContractConfig,
    default_config,
)
from repro.analysis.contracts.model import load_project
from repro.analysis.contracts.registry import PASSES, RULES
from repro.analysis.contracts.sarif import findings_to_sarif
from repro.analysis.findings import findings_to_json

FIXTURES = Path(__file__).parent / "fixtures" / "contracts"
SRC = Path(__file__).resolve().parents[2] / "src"

RULE_IDS = (
    "CTR101",
    "CTR102",
    "CTR103",
    "CTR201",
    "CTR301",
    "CTR401",
    "CTR402",
    "CTR501",
)


def _rules(paths, config=None):
    result = analyze_paths([str(FIXTURES / p) for p in paths], config=config)
    return {f.rule for f in result.findings}


def test_rule_catalogue_is_complete():
    assert tuple(sorted(RULES)) == RULE_IDS
    assert tuple(sorted(r for info in PASSES for r in info.rules)) == RULE_IDS
    assert len(PASSES) == 5


# ----------------------------------------------------------------------
# one seeded violation (and one clean twin) per pass


def test_determinism_bad_fixture_fires_all_three_rules():
    assert _rules(["determinism_bad.py"]) == {"CTR101", "CTR102", "CTR103"}


def test_determinism_good_fixture_is_silent():
    assert _rules(["determinism_good.py"]) == set()


def test_cancellation_bad_fixture_fires():
    result = analyze_paths([str(FIXTURES / "cancellation_bad.py")])
    assert [f.rule for f in result.findings] == ["CTR201"]
    assert "checkpoint" in result.findings[0].message


def test_cancellation_good_fixture_is_silent():
    assert _rules(["cancellation_good.py"]) == set()


def test_spans_bad_fixture_fires_on_exception_path():
    result = analyze_paths([str(FIXTURES / "spans_bad.py")])
    assert [f.rule for f in result.findings] == ["CTR301"]
    assert "exception path" in result.findings[0].message


def test_spans_good_fixture_is_silent():
    # try/finally pairing AND the interprocedural closing-helper idiom
    assert _rules(["spans_good.py"]) == set()


def test_entry_bad_fixture_fires():
    result = analyze_paths(
        [str(FIXTURES / "entry_bad.py"), str(FIXTURES / "entry_kernel.py")]
    )
    assert [f.rule for f in result.findings] == ["CTR501"]
    assert result.findings[0].context["function"] == "solve"


def test_entry_good_fixture_is_silent():
    assert _rules(["entry_good.py", "entry_kernel.py"]) == set()


# ----------------------------------------------------------------------
# footprint audit (config-driven: the fixture group mirrors the real ones)


def _footprint_config(decl, kernel, shared):
    return ContractConfig(
        declarations_module=decl,
        audits=(
            AuditGroup(
                label="fixture",
                recorder="FixtureFootprints",
                functions=((kernel, "relax_chunk"),),
                shared=frozenset(shared),
            ),
        ),
    )


def test_footprints_bad_fixtures_fire_both_rules():
    config = _footprint_config(
        "repro/fixture/footprints_decl.py",
        "repro/fixture/footprints_kernel_bad.py",
        {"dist", "parent", "out", "frontier", "stale"},
    )
    result = analyze_paths(
        [
            str(FIXTURES / "footprints_decl.py"),
            str(FIXTURES / "footprints_kernel_bad.py"),
        ],
        config=config,
    )
    by_rule = {f.rule: f for f in result.findings}
    assert set(by_rule) == {"CTR401", "CTR402"}
    assert by_rule["CTR401"].context["resource"] == "parent"
    assert by_rule["CTR402"].context["resource"] == "stale"


def test_footprints_good_fixtures_are_silent():
    config = _footprint_config(
        "repro/fixture/footprints_decl_good.py",
        "repro/fixture/footprints_kernel_good.py",
        {"dist", "parent", "out", "frontier"},
    )
    result = analyze_paths(
        [
            str(FIXTURES / "footprints_decl_good.py"),
            str(FIXTURES / "footprints_kernel_good.py"),
        ],
        config=config,
    )
    assert result.findings == []


# ----------------------------------------------------------------------
# call graph: the AlgorithmSpec registry indirection


def test_callgraph_resolves_through_registry_indirection():
    project = load_project(
        [
            str(FIXTURES / "registry_fixture.py"),
            str(FIXTURES / "registry_algo.py"),
            str(FIXTURES / "registry_caller.py"),
        ]
    )
    graph = build_callgraph(project, default_config())
    # extraction is over-approximate (the `_spec` helper's own parameter
    # is harvested too); what matters is that the real factory is there
    assert "FixtureAlgorithm" in graph.registry_factories
    drive = next(fn for fn in project.functions() if fn.name == "drive")
    edges = graph.edges[drive.key]
    # make_algorithm("fixture", ...) → the factory's constructor
    assert "repro/ksp/fixture_algo.py::FixtureAlgorithm.__init__" in edges
    # algo.run(k) → the registry-typed receiver's method
    assert "repro/ksp/fixture_algo.py::FixtureAlgorithm.run" in edges


# ----------------------------------------------------------------------
# whole-corpus runs: union of seeded violations, good twins silent


def test_whole_corpus_rules_and_good_modules_silent():
    result = analyze_paths([str(FIXTURES)])
    assert {f.rule for f in result.findings} == {
        "CTR101",
        "CTR102",
        "CTR103",
        "CTR201",
        "CTR301",
        "CTR501",
    }
    for f in result.findings:
        assert "_good" not in str(f.context.get("module", "")), f


def test_two_runs_are_byte_identical():
    first = analyze_paths([str(FIXTURES)]).findings
    second = analyze_paths([str(FIXTURES)]).findings
    assert findings_to_json(first) == findings_to_json(second)
    assert findings_to_sarif(first) == findings_to_sarif(second)


# ----------------------------------------------------------------------
# suppression pragmas: statement-span semantics


def _analyze_source(tmp_path, src, name="fixture.py"):
    p = tmp_path / name
    p.write_text(src)
    return analyze_paths([str(p)])


def test_pragma_on_multiline_statement_suppresses_it(tmp_path):
    src = (
        "# contracts: module=repro/fixture/pragma.py\n"
        "import time\n"
        "\n"
        "\n"
        "def f():\n"
        "    t = time.time(\n"
        "    )  # contracts: disable=CTR102\n"
        "    return t\n"
    )
    result = _analyze_source(tmp_path, src)
    assert result.findings == []
    assert result.suppressed == 1


def test_pragma_on_decorator_suppresses_the_whole_def(tmp_path):
    src = (
        "# contracts: module=repro/fixture/pragma.py\n"
        "import time\n"
        "\n"
        "\n"
        "def dec(f):\n"
        "    return f\n"
        "\n"
        "\n"
        "@dec  # contracts: disable=CTR102\n"
        "def g():\n"
        "    return time.time()\n"
    )
    result = _analyze_source(tmp_path, src)
    assert result.findings == []
    assert result.suppressed == 1


def test_pragma_on_loop_header_does_not_blanket_the_body(tmp_path):
    src = (
        "# contracts: module=repro/fixture/pragma.py\n"
        "import time\n"
        "\n"
        "\n"
        "def f(xs):\n"
        "    out = []\n"
        "    for x in xs:  # contracts: disable=CTR102\n"
        "        out.append(time.time())\n"
        "    return out\n"
    )
    result = _analyze_source(tmp_path, src)
    assert [f.rule for f in result.findings] == ["CTR102"]
    assert result.suppressed == 0


# ----------------------------------------------------------------------
# incremental mode


def test_incremental_cold_then_warm_agrees_with_full(tmp_path):
    full = analyze_paths([str(FIXTURES)])
    cache = tmp_path / "cache.json"
    cold = analyze_paths([str(FIXTURES)], cache_path=cache)
    assert cold.cache_misses and not cold.cache_hits
    warm = analyze_paths([str(FIXTURES)], cache_path=cache)
    assert warm.cache_hits and not warm.cache_misses
    for run in (cold, warm):
        assert [f.to_dict() for f in run.findings] == [
            f.to_dict() for f in full.findings
        ]
        assert run.suppressed == full.suppressed


def test_incremental_reanalyzes_only_changed_modules_and_dependents(tmp_path):
    corpus = tmp_path / "corpus"
    shutil.copytree(FIXTURES, corpus)
    cache = tmp_path / "cache.json"
    analyze_paths([str(corpus)], cache_path=cache)

    # touching the kernel module dirties it and its entry-point callers
    kernel = corpus / "entry_kernel.py"
    kernel.write_text(kernel.read_text() + "\n\nEXTRA_CONSTANT = 1\n")

    inc = analyze_paths([str(corpus)], cache_path=cache)
    misses = set(inc.cache_misses)
    assert "repro/ksp/fixture_kernel.py" in misses
    assert "repro/fixture/entry_bad.py" in misses
    assert "repro/fixture/entry_good.py" in misses
    assert "repro/fixture/determinism_bad.py" in inc.cache_hits
    assert "repro/fixture/cancellation_bad.py" in inc.cache_hits

    fresh = analyze_paths([str(corpus)])
    assert [f.to_dict() for f in inc.findings] == [
        f.to_dict() for f in fresh.findings
    ]


# ----------------------------------------------------------------------
# CLI


def test_cli_exit_codes(capsys):
    assert main([str(FIXTURES / "determinism_good.py")]) == 0
    capsys.readouterr()
    assert main([str(FIXTURES / "determinism_bad.py")]) == 1
    captured = capsys.readouterr()
    assert "new finding" in captured.err
    assert "CTR101" in captured.out


def test_cli_missing_path(capsys):
    assert main(["no/such/path.py"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_cli_syntax_error_exits_2(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    assert main([str(broken)]) == 2
    assert "broken.py" in capsys.readouterr().err


def test_cli_json_format(capsys):
    assert main(["--format", "json", str(FIXTURES / "spans_bad.py")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert [item["rule"] for item in payload] == ["CTR301"]
    assert all(item["tool"] == "contracts" for item in payload)


def test_cli_sarif_format(capsys):
    assert main(["--format", "sarif", str(FIXTURES / "cancellation_bad.py")]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    driver = doc["runs"][0]["tool"]["driver"]
    assert driver["name"] == "repro-contracts"
    assert {r["id"] for r in driver["rules"]} >= set(RULE_IDS)
    results = doc["runs"][0]["results"]
    assert [r["ruleId"] for r in results] == ["CTR201"]
    region = results[0]["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] > 0 and region["startColumn"] > 0


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULE_IDS:
        assert rule in out


def test_cli_baseline_ratchet(tmp_path, capsys):
    bad = str(FIXTURES / "determinism_bad.py")
    baseline = tmp_path / "baseline.json"
    assert main(["--baseline", str(baseline), "--write-baseline", bad]) == 0
    capsys.readouterr()
    # baselined findings no longer fail the run
    assert main(["--baseline", str(baseline), bad]) == 0
    assert "baselined" in capsys.readouterr().err
    # fixed debt is reported as stale, still exit 0
    good = str(FIXTURES / "determinism_good.py")
    assert main(["--baseline", str(baseline), good]) == 0
    assert "stale" in capsys.readouterr().err


def test_cli_incremental_and_report(tmp_path, capsys):
    cache = tmp_path / "cache.json"
    report = tmp_path / "report.txt"
    rc = main(
        [
            "--incremental",
            "--cache",
            str(cache),
            "--report",
            str(report),
            str(FIXTURES / "determinism_good.py"),
        ]
    )
    assert rc == 0
    assert "incremental" in capsys.readouterr().err
    assert cache.exists()
    text = report.read_text()
    assert "modules analyzed" in text and "findings by pass" in text


def test_cli_output_is_deterministic(tmp_path, capsys):
    main(["--format", "json", str(FIXTURES)])
    first = capsys.readouterr().out
    main(["--format", "json", str(FIXTURES)])
    assert capsys.readouterr().out == first


# ----------------------------------------------------------------------
# the acceptance gate: the shipped tree holds its contracts


@pytest.mark.slow
def test_source_tree_holds_its_contracts():
    result = analyze_paths([str(SRC / "repro")])
    assert result.findings == []
