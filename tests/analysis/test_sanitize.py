"""Runtime sanitizer: clean runs stay identical, seeded bugs are caught."""

import numpy as np
import pytest

import repro
from repro.analysis.sanitize import (
    check_csr,
    check_edge_swap_view,
    check_prune_certificate,
    check_result_paths,
    check_workspace,
    sanitize_enabled_from_env,
)
from repro.core.compaction import EdgeSwapView, StatusArrayView
from repro.errors import SanitizerError
from repro.graph.csr import CSRGraph
from repro.graph.generators import grid_network
from repro.paths import Path
from repro.sssp.workspace import SSSPWorkspace


@pytest.fixture(scope="module")
def grid():
    return grid_network(8, 8, seed=3)


# ----------------------------------------------------------------------
# clean runs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ["PeeK", "Yen", "OptYen", "SB", "NC"])
def test_sanitized_solve_is_bitwise_identical(grid, algorithm):
    plain = repro.solve(grid, 0, 63, k=5, algorithm=algorithm)
    checked = repro.solve(grid, 0, 63, k=5, algorithm=algorithm, sanitize=True)
    assert [p.vertices for p in plain.paths] == [p.vertices for p in checked.paths]
    assert plain.distances == checked.distances  # bitwise, not approximate


def test_env_var_enables_sanitizer(monkeypatch):
    monkeypatch.delenv("RPR_SANITIZE", raising=False)
    assert not sanitize_enabled_from_env()
    for off in ("0", "false", "off", ""):
        monkeypatch.setenv("RPR_SANITIZE", off)
        assert not sanitize_enabled_from_env()
    monkeypatch.setenv("RPR_SANITIZE", "1")
    assert sanitize_enabled_from_env()


def test_sanitize_rejects_bad_input_graph(grid):
    broken = CSRGraph(
        np.array([0, 2, 1, 3]),  # indptr decreases at vertex 1
        np.array([1, 2, 0]),
        np.array([1.0, 1.0, 1.0]),
        check=False,
    )
    with pytest.raises(SanitizerError, match="vertex 1"):
        repro.solve(broken, 0, 2, k=1, algorithm="Yen", sanitize=True)


# ----------------------------------------------------------------------
# seeded structural bugs
# ----------------------------------------------------------------------
def test_corrupted_edge_swap_dangling_index(grid):
    view = EdgeSwapView(grid, np.ones(grid.num_vertices, dtype=bool))
    view.indices[0] = grid.num_vertices + 7  # dangling target
    with pytest.raises(SanitizerError, match="dangling") as exc:
        check_edge_swap_view(view)
    # the message names the offending edge position and bogus target
    assert "position 0" in str(exc.value)
    assert str(grid.num_vertices + 7) in str(exc.value)
    assert exc.value.finding.rule == "SAN-VIEW"


def test_edge_swap_segment_end_out_of_range(grid):
    view = EdgeSwapView(grid, np.ones(grid.num_vertices, dtype=bool))
    view._ends = view._ends.copy()
    view._ends[3] = int(grid.indptr[4]) + 1  # spills into vertex 4's segment
    with pytest.raises(SanitizerError, match="vertex 3"):
        check_edge_swap_view(view)


def test_status_view_live_edge_to_pruned_vertex(grid):
    keep = np.ones(grid.num_vertices, dtype=bool)
    view = StatusArrayView(grid, keep)
    view.keep_vertices = keep.copy()
    view.keep_vertices[grid.indices[0]] = False  # prune the target, keep the edge
    with pytest.raises(SanitizerError, match="pruned") as exc:
        from repro.analysis.sanitize import check_status_view

        check_status_view(view)
    assert exc.value.finding.rule == "SAN-VIEW"


def test_check_csr_names_bad_edge():
    g = CSRGraph(
        np.array([0, 1, 2]), np.array([1, 0]), np.array([1.0, 2.0]), check=False
    )
    g.indices[1] = 9
    with pytest.raises(SanitizerError, match=r"edge 1 targets vertex 9"):
        check_csr(g)


# ----------------------------------------------------------------------
# path / certificate bugs
# ----------------------------------------------------------------------
def test_non_simple_path_names_repeated_vertex(grid):
    result = repro.solve(grid, 0, 63, k=2)
    result.paths[0] = Path(
        distance=result.paths[0].distance, vertices=(0, 1, 0, 1, 63)
    )
    with pytest.raises(SanitizerError, match="vertex 0 repeats") as exc:
        check_result_paths(grid, result, 0, 63)
    assert exc.value.finding.rule == "SAN-PATH"
    assert exc.value.finding.context["vertex"] == 0


def test_wrong_distance_caught(grid):
    result = repro.solve(grid, 0, 63, k=2)
    result.paths[1] = Path(
        distance=result.paths[1].distance + 0.5, vertices=result.paths[1].vertices
    )
    with pytest.raises(SanitizerError, match="sum to"):
        check_result_paths(grid, result, 0, 63)


def test_unsorted_result_caught(grid):
    result = repro.solve(grid, 0, 63, k=3)
    result.paths[0], result.paths[2] = result.paths[2], result.paths[0]
    with pytest.raises(SanitizerError, match="non-decreasing"):
        check_result_paths(grid, result, 0, 63)


def test_prune_certificate_flags_path_above_bound(grid):
    result = repro.solve(grid, 0, 63, k=4)
    assert result.prune is not None and np.isfinite(result.prune.bound)
    result.paths[-1] = Path(
        distance=result.prune.bound * 2.0, vertices=result.paths[-1].vertices
    )
    with pytest.raises(SanitizerError, match="prune bound") as exc:
        check_prune_certificate(result)
    assert exc.value.finding.rule == "SAN-PRUNE"


def test_prune_certificate_flags_prunable_vertex(grid):
    result = repro.solve(grid, 0, 63, k=4)
    v = result.paths[0].vertices[1]
    result.prune.sp_sum[v] = result.prune.bound * 10  # claim v was prunable
    with pytest.raises(SanitizerError, match=f"vertex {v}"):
        check_prune_certificate(result)


# ----------------------------------------------------------------------
# workspace epoch integrity
# ----------------------------------------------------------------------
def test_workspace_future_stamp_caught(grid):
    ws = SSSPWorkspace(grid)
    ws.next_epoch()
    check_workspace(ws)  # fresh workspace is fine
    ws._dstamp[5] = ws.epoch + 3
    with pytest.raises(SanitizerError, match="vertex 5") as exc:
        check_workspace(ws)
    assert exc.value.finding.rule == "SAN-WS"


def test_workspace_ban_mask_desync_caught(grid):
    ws = SSSPWorkspace(grid)
    ws.next_epoch()
    ws._ban_bytes[7] = 1  # mask flipped without updating the tracking set
    with pytest.raises(SanitizerError, match="vertex 7"):
        check_workspace(ws)
