"""RPR004 good fixture: the shared tolerance helper."""

from repro.paths import costs_close


def already_known(total_dist, best_dist, pool):
    if costs_close(total_dist, best_dist):
        return True
    return any(not costs_close(candidate.distance, best_dist) for candidate in pool)
