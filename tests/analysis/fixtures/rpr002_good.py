"""RPR002 good fixture: the span lives in a `with` statement."""


def run(tracer):
    with tracer.span("solve"):
        return 1
