"""RPR005 regression fixture: an alias that grew its own behaviour."""
# repro-lint: module=repro/ksp/fixture.py


def yen_ksp(graph, source, target, k, **kwargs):
    """Not a thin alias: clamps k before delegating."""
    from repro.api import solve

    if k > 10:
        k = 10
    return solve(graph, source, target, k, algorithm="Yen", **kwargs)
