"""RPR003 regression fixture: per-spur O(n) allocation in the hot loop."""
# repro-lint: module=repro/ksp/fixture.py

import numpy as np


def spur_searches(n, spurs):
    out = []
    for _ in spurs:
        banned = np.zeros(n, dtype=bool)
        out.append(banned)
    return out
