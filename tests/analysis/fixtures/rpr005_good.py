"""RPR005 good fixture: the sanctioned thin-alias shape."""
# repro-lint: module=repro/ksp/fixture.py


def yen_ksp(graph, source, target, k, **kwargs):
    """Thin alias for :func:`repro.solve` with ``algorithm="Yen"``."""
    from repro.api import solve

    return solve(graph, source, target, k, algorithm="Yen", **kwargs)
