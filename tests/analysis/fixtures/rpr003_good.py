"""RPR003 good fixture: hoisted buffer; small constant scratch allowed."""
# repro-lint: module=repro/ksp/fixture.py

import numpy as np


def spur_searches(n, spurs):
    banned = np.zeros(n, dtype=bool)  # hoisted, reset sparsely per spur
    out = []
    for _ in spurs:
        scratch = np.empty(16, dtype=np.int64)  # constant-size: not O(n)
        out.append((banned, scratch))
    return out
