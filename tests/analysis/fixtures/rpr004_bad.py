"""RPR004 regression fixture: exact equality on float path costs."""


def already_known(total_dist, best_dist, pool):
    if total_dist == best_dist:
        return True
    return any(candidate.distance != best_dist for candidate in pool)
