"""RPR002 regression fixture: a manually entered, manually exited span."""


def run(tracer):
    span = tracer.span("solve")
    span.__enter__()
    try:
        return 1
    finally:
        span.__exit__(None, None, None)
