"""RPR001 regression fixture: every way of mutating CSR backing arrays."""

import numpy as np


def zero_out_first_edge(graph):
    graph.weights[0] = 0.5  # subscript assignment
    graph.indices.fill(0)  # mutating method call
    np.add(graph.weights, 1.0, out=graph.weights)  # out= kwarg
    graph.indptr[1:] += 1  # augmented subscript assignment
