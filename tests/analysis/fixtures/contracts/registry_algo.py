"""Registry fixture: the algorithm class behind the indirection."""
# contracts: module=repro/ksp/fixture_algo.py


class FixtureAlgorithm:
    def __init__(self, graph, source, target):
        self.graph = graph
        self.source = source
        self.target = target

    def run(self, k):
        return [self.graph] * k
