"""Entry pass fixture: solve() hits the kernel with a raw query."""
# contracts: module=repro/fixture/entry_bad.py

from repro.ksp.fixture_kernel import run_kernel


def solve(graph, source, target, k):
    return run_kernel(graph, source, target, k)  # CTR501: not validated
