"""Entry pass fixture: solve() validates before the kernel — silent."""
# contracts: module=repro/fixture/entry_good.py

from repro.ksp.fixture_kernel import run_kernel


def validate_query(graph, query):
    """Stand-in validator (classification is name-based)."""
    if query[0] < 0 or query[0] >= len(graph):
        raise ValueError("bad source")


def solve(graph, source, target, k):
    validate_query(graph, (source, target, k))
    return run_kernel(graph, source, target, k)
