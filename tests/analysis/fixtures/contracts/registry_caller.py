"""Registry fixture: a caller reaching an algorithm only via the registry."""
# contracts: module=repro/fixture/registry_caller.py

from repro.ksp.registry import make_algorithm


def drive(graph, source, target, k):
    algo = make_algorithm("fixture", graph, source, target)
    return algo.run(k)
