"""Footprint fixture: recorder declarations the audit diffs against.

Declares writes to ``out`` and ``dist`` — and to ``stale``, which no
audited phase function writes (seeded CTR402).
"""
# contracts: module=repro/fixture/footprints_decl.py


class FixtureFootprints:
    def record_step(self, writes, num_workers):
        for w in range(num_workers):
            writes[w].add(("out", w))
        master = writes[num_workers]  # alias of a writes[...] cell
        master.add(("dist", 0))
        master.add(("stale", 0))  # CTR402: declaration drifted from code
