"""Registry fixture: masquerades as the AlgorithmSpec registry module.

The call graph must resolve ``make_algorithm(...)`` through the
``_spec(...)`` table below to :class:`FixtureAlgorithm` — the same
indirection the real ``repro/ksp/registry.py`` uses.
"""
# contracts: module=repro/ksp/registry.py

from dataclasses import dataclass

from repro.ksp.fixture_algo import FixtureAlgorithm


@dataclass(frozen=True)
class AlgorithmSpec:
    name: str
    factory: object


def _spec(name, factory):
    return AlgorithmSpec(name, factory)


ALGORITHMS = {
    "fixture": _spec("fixture", FixtureAlgorithm),
}


def make_algorithm(name, graph, source, target):
    return ALGORITHMS[name].factory(graph, source, target)
