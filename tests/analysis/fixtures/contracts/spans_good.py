"""Span pass fixture: try/finally pairing and a closing helper — silent."""
# contracts: module=repro/fixture/spans_good.py


def traced_run(tracer, kernel):
    handle = tracer.span("ksp").__enter__()
    try:
        return kernel.run()
    finally:
        handle.__exit__(None, None, None)


def close_span(handle):
    """A helper the close summary must credit to its caller."""
    handle.close()


def handoff_run(tracer, kernel):
    handle = tracer.span("ksp")
    try:
        return kernel.run()
    finally:
        close_span(handle)  # interprocedural close, via the summary
