"""Entry pass fixture: a module masquerading as KSP kernel code."""
# contracts: module=repro/ksp/fixture_kernel.py


def run_kernel(graph, source, target, k):
    return graph[source][target][:k]
