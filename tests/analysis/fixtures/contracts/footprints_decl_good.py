"""Footprint fixture: declarations matching the good kernel exactly.

Uses the ``comm.record_writes`` generator form so the extractor's second
declaration shape is exercised too.
"""
# contracts: module=repro/fixture/footprints_decl_good.py


class FixtureFootprints:
    def record_step(self, comm, rank, chunks):
        comm.record_writes(rank, (("out", c) for c in chunks))
        comm.record_writes(rank, [("dist", 0)])
