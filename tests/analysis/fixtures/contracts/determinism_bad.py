"""Determinism pass fixture: every CTR1xx violation in one module."""
# contracts: module=repro/fixture/determinism_bad.py

import random
import time

RNG = random.Random()  # CTR103: RNG object parked in a module global


def solve(graph, source, target, k):
    jitter = random.random()  # CTR101: entry-reachable module-state draw
    started = time.time()  # CTR102: wall clock outside repro/cancel.py
    return graph, source, target, k, jitter, started
