"""Span pass fixture: manual open, close skipped on the exception edge."""
# contracts: module=repro/fixture/spans_bad.py


def traced_run(tracer, kernel):
    handle = tracer.span("ksp").__enter__()  # CTR301
    out = kernel.run()  # a raise here skips the __exit__ below
    handle.__exit__(None, None, None)
    return out
