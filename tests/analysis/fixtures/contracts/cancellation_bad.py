"""Cancellation pass fixture: hot loop under solve() never checkpoints."""
# contracts: module=repro/fixture/cancellation_bad.py


def solve(graph, deadline):
    while True:  # CTR201: unbounded, no checkpoint on this path
        if graph.step(deadline):
            return graph
