"""Footprint fixture: phase function writing an undeclared shared array."""
# contracts: module=repro/fixture/footprints_kernel_bad.py


def relax_chunk(dist, parent, out, frontier):
    for i in range(frontier.size):
        out[i] = dist[frontier[i]]
        parent[frontier[i]] = i  # CTR401: 'parent' never declared
    dist[0] = out[0]
