"""Cancellation pass fixture: the same loop, checkpointed — silent."""
# contracts: module=repro/fixture/cancellation_good.py


def checkpoint(deadline, stage):
    """Stand-in for repro.cancel.checkpoint (coverage is name-based)."""
    del deadline, stage


def solve(graph, deadline):
    while True:
        checkpoint(deadline, "fixture.loop")
        if graph.step(deadline):
            return graph
