"""Determinism pass fixture: seeded RNG and injected clock — silent."""
# contracts: module=repro/fixture/determinism_good.py


def solve(graph, source, target, k, rng, clock):
    jitter = rng.random()  # explicit seeded generator, passed down
    started = clock()  # injected clock read, not a wall-clock call
    return graph, source, target, k, jitter, started
