"""Footprint fixture: phase writes exactly what the recorder declares."""
# contracts: module=repro/fixture/footprints_kernel_good.py


def relax_chunk(dist, parent, out, frontier):
    for i in range(frontier.size):
        out[i] = dist[frontier[i]] + 1.0
    _commit(dist, out)


def _commit(dist, out):
    dist[0] = out[0]  # the param-write summary credits relax_chunk
