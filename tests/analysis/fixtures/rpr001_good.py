"""RPR001 good fixture: copy first, mutate the copy."""

import numpy as np


def reweighted_copy(graph):
    weights = graph.weights.copy()
    weights[0] = 0.5
    return np.maximum(weights, 1e-9)
