"""repro-lint: rule catalogue, fixture corpus, pragmas, CLI."""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import RULES, lint_file, lint_paths, lint_source, main

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src"

RULE_IDS = ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005")


def test_rule_catalogue_is_complete():
    assert tuple(sorted(RULES)) == RULE_IDS
    for rule in RULES.values():
        assert rule.summary and rule.scope


@pytest.mark.parametrize("rule", RULE_IDS)
def test_bad_fixture_fires_its_rule(rule):
    findings = lint_file(FIXTURES / f"{rule.lower()}_bad.py")
    assert findings, f"{rule} bad fixture produced no findings"
    assert {f.rule for f in findings} == {rule}
    for f in findings:
        assert f.tool == "lint"
        assert f.severity == "error"
        assert f.line is not None


@pytest.mark.parametrize("rule", RULE_IDS)
def test_good_fixture_is_silent(rule):
    assert lint_file(FIXTURES / f"{rule.lower()}_good.py") == []


def test_rpr001_counts_every_mutation_shape():
    # subscript assign, .fill(), out=, augmented subscript — all four lines
    findings = lint_file(FIXTURES / "rpr001_bad.py")
    assert len(findings) == 4


def test_source_tree_is_clean():
    """The acceptance gate: zero findings over the shipped src/ tree."""
    assert lint_paths([SRC]) == []


def test_disable_pragma_suppresses_one_line():
    src = (
        "def f(g):\n"
        "    g.weights[0] = 1.0  # repro-lint: disable=RPR001\n"
        "    g.weights[1] = 2.0\n"
    )
    findings = lint_source(src, "fixture.py")
    assert len(findings) == 1
    assert findings[0].line == 3


def test_module_pragma_enables_path_scoped_rules():
    src = (
        "# repro-lint: module=repro/sssp/fixture.py\n"
        "import numpy as np\n"
        "def f(n):\n"
        "    for _ in range(3):\n"
        "        np.zeros(n)\n"
    )
    assert [f.rule for f in lint_source(src, "elsewhere.py")] == ["RPR003"]
    # without the pragma the file is out of RPR003's scope
    assert lint_source(src.replace("# repro-lint: module=repro/sssp/fixture.py\n", ""),
                       "elsewhere.py") == []


def test_module_path_inferred_from_filename():
    src = "import numpy as np\ndef f(n):\n    for _ in range(3):\n        np.zeros(n)\n"
    assert [f.rule for f in lint_source(src, "src/repro/sssp/foo.py")] == ["RPR003"]
    assert lint_source(src, "src/repro/graph/foo.py") == []


def test_mp_backend_in_rpr003_scope():
    src = "import numpy as np\ndef f(n):\n    for _ in range(3):\n        np.zeros(n)\n"
    mp = "src/repro/parallel/mp_backend.py"
    assert [f.rule for f in lint_source(src, mp)] == ["RPR003"]
    # the rest of repro/parallel/ (the simulator) stays out of scope
    assert lint_source(src, "src/repro/parallel/scheduler.py") == []


def test_load_and_serve_layers_in_rpr003_scope():
    src = "import numpy as np\ndef f(n):\n    for _ in range(3):\n        np.zeros(n)\n"
    for path in (
        "src/repro/load/driver.py",
        "src/repro/serve/server.py",
    ):
        assert [f.rule for f in lint_source(src, path)] == ["RPR003"], path
    # the analysis tooling itself stays out of the hot-path scope
    assert lint_source(src, "src/repro/analysis/race.py") == []


def test_rpr004_covers_load_latency_accumulators():
    src = "def f(latency, waits):\n    return latency == waits[0]\n"
    findings = lint_source(src, "src/repro/load/metrics.py")
    assert [f.rule for f in findings] == ["RPR004"]


def test_workspace_module_exempt_from_rpr003():
    src = "import numpy as np\ndef f(n):\n    for _ in range(3):\n        np.zeros(n)\n"
    assert lint_source(src, "src/repro/sssp/workspace.py") == []


def test_small_constant_allocation_allowed_in_loop():
    src = "import numpy as np\ndef f():\n    for _ in range(3):\n        np.zeros(8)\n"
    assert lint_source(src, "src/repro/ksp/foo.py") == []


def test_rpr004_ignores_non_cost_identifiers():
    src = "def f(count, size):\n    return count == size\n"
    assert lint_source(src, "src/repro/ksp/foo.py") == []


def test_rpr005_requires_a_return():
    src = (
        "# repro-lint: module=repro/ksp/fixture.py\n"
        "def peek_ksp(g, s, t, k):\n"
        "    from repro.api import solve\n"
        "    solve(g, s, t, k)\n"
    )
    findings = lint_source(src, "fixture.py")
    assert [f.rule for f in findings] == ["RPR005"]


def test_syntax_error_reported_not_raised(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    findings = lint_file(bad)
    assert len(findings) == 1
    assert findings[0].rule == "RPR000"


def test_cli_text_and_exit_codes(capsys):
    assert main([str(FIXTURES / "rpr001_good.py")]) == 0
    assert "clean" in capsys.readouterr().out
    assert main([str(FIXTURES / "rpr001_bad.py")]) == 1
    out = capsys.readouterr().out
    assert "RPR001" in out and "finding" in out


def test_cli_json_format(capsys):
    assert main(["--format", "json", str(FIXTURES / "rpr004_bad.py")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload and all(item["rule"] == "RPR004" for item in payload)
    assert all(item["tool"] == "lint" for item in payload)


def test_cli_list_rules(capsys):
    assert main(["--list-rules", "."]) == 0
    out = capsys.readouterr().out
    for rule in RULE_IDS:
        assert rule in out
