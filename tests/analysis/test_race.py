"""Vector-clock race detector: core semantics, Δ-stepping, SimComm."""

import numpy as np
import pytest

from repro.analysis.race import (
    DeltaSteppingFootprints,
    Footprint,
    RaceDetector,
    check_workload,
)
from repro.distributed.comm import SimComm
from repro.errors import CommError
from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi, grid_network
from repro.parallel.workload import JobKind, Phase, TaskPhase, Workload
from repro.sssp.delta_stepping import delta_stepping
from repro.sssp.dijkstra import dijkstra


# ----------------------------------------------------------------------
# detector core
# ----------------------------------------------------------------------
def test_write_write_conflict():
    det = RaceDetector(2)
    det.write(0, ("dist", 4))
    det.write(1, ("dist", 4))
    assert [f.rule for f in det.findings] == ["RACE-WW"]
    assert "dist[4]" in det.findings[0].message


def test_read_write_conflict_both_orders():
    det = RaceDetector(2)
    det.read(0, ("dist", 1))
    det.write(1, ("dist", 1))  # write after concurrent read
    det.write(0, ("dist", 2))
    det.read(1, ("dist", 2))  # read after concurrent write
    assert [f.rule for f in det.findings] == ["RACE-RW", "RACE-RW"]


def test_barrier_separates_accesses():
    det = RaceDetector(2)
    det.write(0, ("dist", 4))
    det.barrier()
    det.write(1, ("dist", 4))
    det.read(0, ("dist", 4))  # same side of the barrier as task 1's write...
    assert [f.rule for f in det.findings] == ["RACE-RW"]  # ...so only this


def test_same_task_never_conflicts_with_itself():
    det = RaceDetector(3)
    det.read(1, "x")
    det.write(1, "x")
    det.write(1, "x")
    assert det.findings == []


def test_conflicts_deduplicated_per_pair_and_resource():
    det = RaceDetector(2)
    for _ in range(5):
        det.write(0, "x")
        det.write(1, "x")
    assert len(det.findings) == 1


def test_needs_at_least_one_task():
    with pytest.raises(ValueError):
        RaceDetector(0)


# ----------------------------------------------------------------------
# workload-level checking
# ----------------------------------------------------------------------
def test_check_workload_trusts_undeclared_phases():
    wl = Workload(phases=[Phase(JobKind.DATA, 100, "opaque")])
    assert check_workload(wl) == []


def test_check_workload_flags_overlapping_writes():
    fps = (
        Footprint(writes=(("dist", 1), ("dist", 2))),
        Footprint(writes=(("dist", 2),)),
    )
    wl = Workload(phases=[TaskPhase((10, 10), "bad-commit", footprints=fps)])
    findings = check_workload(wl)
    assert [f.rule for f in findings] == ["RACE-WW"]
    assert findings[0].context["phase"] == "bad-commit"


def test_check_workload_phases_are_barrier_separated():
    # the same overlap split across two phases is legal: phases sync
    wl = Workload(
        phases=[
            Phase(JobKind.DATA, 1, "a", footprints=(Footprint(writes=(("d", 0),)), Footprint())),
            Phase(JobKind.DATA, 1, "b", footprints=(Footprint(), Footprint(writes=(("d", 0),)))),
        ]
    )
    assert check_workload(wl) == []


# ----------------------------------------------------------------------
# Δ-stepping decomposition
# ----------------------------------------------------------------------
@pytest.mark.parametrize("num_tasks", [2, 4])
def test_shipped_delta_stepping_decomposition_is_race_free(num_tasks):
    """Acceptance criterion: zero conflicts on the real phase structure."""
    for g in (grid_network(8, 8, seed=3), erdos_renyi(60, 0.1, seed=7)):
        source = int(np.argmax(g.out_degrees()))  # a vertex with out-edges
        rec = DeltaSteppingFootprints(num_tasks=num_tasks)
        delta_stepping(g, source, footprint_recorder=rec)
        assert rec.phases, "recorder saw no bucket steps"
        assert rec.check() == []


def test_barrier_elision_bug_is_flagged():
    """Acceptance criterion: the synthetic forgotten-barrier bug is caught."""
    g = CSRGraph(
        np.array([0, 2, 3, 3]),
        np.array([1, 2, 2]),
        np.array([1.0, 3.0, 0.5]),
    )
    rec = DeltaSteppingFootprints(num_tasks=2, elide_barriers=True)
    delta_stepping(g, 0, delta=10.0, footprint_recorder=rec)
    findings = rec.check()
    assert findings and all(f.rule == "RACE-RW" for f in findings)
    assert any("dist[" in f.message for f in findings)
    # the same run with proper barriers is clean
    clean = DeltaSteppingFootprints(num_tasks=2)
    delta_stepping(g, 0, delta=10.0, footprint_recorder=clean)
    assert clean.check() == []


def test_footprint_recorder_does_not_change_distances():
    g = erdos_renyi(50, 0.12, seed=11)
    rec = DeltaSteppingFootprints(num_tasks=3)
    with_rec = delta_stepping(g, 0, footprint_recorder=rec)
    without = delta_stepping(g, 0)
    assert np.array_equal(with_rec.dist, without.dist)
    assert np.array_equal(with_rec.dist, dijkstra(g, 0).dist)


def test_recorder_as_workload_carries_footprints():
    g = grid_network(4, 4, seed=1)
    rec = DeltaSteppingFootprints(num_tasks=2)
    delta_stepping(g, 0, footprint_recorder=rec)
    wl = rec.as_workload()
    assert wl.num_phases == len(rec.phases)
    assert all(p.footprints for p in wl.phases)
    # gather/commit alternation: labels come in pairs
    labels = [p.label for p in wl.phases]
    assert any(lbl.endswith("-gather") for lbl in labels)
    assert any(lbl.endswith("-commit") for lbl in labels)


# ----------------------------------------------------------------------
# SimComm integration
# ----------------------------------------------------------------------
def test_simcomm_flags_unsynchronised_writes():
    det = RaceDetector(2)
    comm = SimComm(2, race_detector=det)
    comm.record_writes(0, [("owned", 3)])
    comm.record_writes(1, [("owned", 3)])
    assert [f.rule for f in det.findings] == ["RACE-WW"]


def test_simcomm_collectives_are_barriers():
    det = RaceDetector(2)
    comm = SimComm(2, race_detector=det)
    comm.record_writes(0, [("owned", 3)])
    comm.alltoallv([[[], []], [[], []]])  # any collective synchronises
    comm.record_writes(1, [("owned", 3)])
    comm.barrier()
    comm.record_reads(0, [("owned", 3)])
    assert det.findings == []


def test_simcomm_rank_count_must_match_detector():
    with pytest.raises(CommError, match="3 tasks"):
        SimComm(2, race_detector=RaceDetector(3))


def test_simcomm_rejects_bad_rank():
    comm = SimComm(2, race_detector=RaceDetector(2))
    with pytest.raises(CommError, match="bad rank"):
        comm.record_writes(5, ["x"])


def test_simcomm_without_detector_ignores_declarations():
    comm = SimComm(2)
    comm.record_writes(0, ["x"])  # no-op, must not raise
    comm.record_reads(1, ["x"])
    assert comm.race_detector is None
