"""Unit and property tests for the PeeK pipeline, including Theorem 4.3."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.peek import PeeK, peek_ksp
from repro.errors import KSPError, UnreachableTargetError
from repro.graph.build import from_edge_array, from_edge_list
from repro.graph.generators import erdos_renyi
from repro.ksp.yen import yen_ksp
from repro.sssp.dijkstra import dijkstra
from tests.conftest import random_reachable_pair


class TestPipeline:
    def test_fan_graph(self, fan_graph):
        res = peek_ksp(fan_graph, 0, 4, 4)
        assert res.distances == pytest.approx([2.0, 4.0, 6.0, 20.0])

    def test_artifacts_exposed(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=21)
        res = peek_ksp(medium_er, s, t, 4)
        assert res.prune is not None
        assert res.compaction is not None
        assert res.prune.bound > 0
        assert 0 <= res.pruned_vertex_fraction <= 1

    def test_paths_in_original_ids(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=21)
        res = peek_ksp(medium_er, s, t, 4)
        for p in res.paths:
            assert p.source == s and p.target == t
            # every edge exists in the *original* graph
            for a, b in p.edges():
                assert medium_er.has_edge(a, b)

    def test_ablation_flags(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=22)
        ref = yen_ksp(medium_er, s, t, 5).distances
        for flags in (
            dict(prune=False, compact=False),
            dict(compact=False),
            dict(),
            dict(compaction_force="edge-swap"),
            dict(compaction_force="status-array"),
            dict(compaction_force="regeneration"),
            dict(kernel="dijkstra"),
            dict(strong_edge_prune=True),
            dict(alpha=1.0),
            dict(alpha=0.0),
        ):
            got = PeeK(medium_er, s, t, **flags).run(5).distances
            assert np.allclose(got, ref), flags

    def test_base_variant_has_no_prune_artifacts(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=23)
        res = PeeK(medium_er, s, t, prune=False, compact=False).run(3)
        assert res.prune is None
        assert res.compaction is None

    def test_unreachable(self):
        g = from_edge_list(3, [(0, 1, 1.0)])
        with pytest.raises(UnreachableTargetError):
            peek_ksp(g, 0, 2, 2)

    def test_iter_requires_prepare(self, fan_graph):
        algo = PeeK(fan_graph, 0, 4)
        with pytest.raises(KSPError):
            next(algo.iter_paths())

    def test_iter_stops_at_prepared_k(self, fan_graph):
        algo = PeeK(fan_graph, 0, 4)
        algo.prepare(2)
        assert len(list(algo.iter_paths())) == 2

    def test_bad_k(self, fan_graph):
        with pytest.raises(ValueError):
            peek_ksp(fan_graph, 0, 4, 0)


class TestPruningEffect:
    def test_kept_graph_much_smaller(self):
        g = erdos_renyi(400, 5.0, seed=31)
        s, t = random_reachable_pair(g, seed=3)
        res = peek_ksp(g, s, t, 4)
        assert res.compaction.remaining_edges < g.num_edges
        assert res.prune.num_kept_vertices < g.num_vertices

    def test_less_ksp_work_than_baseline(self):
        g = erdos_renyi(400, 5.0, seed=31)
        s, t = random_reachable_pair(g, seed=3)
        peek = peek_ksp(g, s, t, 8)
        base = PeeK(g, s, t, prune=False, compact=False).run(8)
        # the KSP stage itself must get dramatically cheaper after pruning
        assert peek.stats.total_work <= base.stats.total_work


class TestTheorem43:
    """The K shortest paths of the pruned graph equal the original's."""

    @given(st.integers(0, 10_000), st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_peek_equals_yen_on_random_graphs(self, seed, k):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 40))
        m = int(rng.integers(n, 5 * n))
        g = from_edge_array(
            n,
            rng.integers(0, n, size=m),
            rng.integers(0, n, size=m),
            rng.choice([0.25, 0.5, 1.0, 1.5, 4.0], size=m),
        )
        s = int(rng.integers(0, n))
        reach = np.flatnonzero(np.isfinite(dijkstra(g, s).dist))
        reach = reach[reach != s]
        if reach.size == 0:
            return  # nothing reachable; skip this draw
        t = int(reach[rng.integers(0, reach.size)])
        ref = yen_ksp(g, s, t, k)
        got = peek_ksp(g, s, t, k)
        assert len(got.paths) == len(ref.paths)
        assert np.allclose(got.distances, ref.distances)

    def test_unit_weight_ties(self):
        """Massive shortest-path ties (the -U graphs) stay correct."""
        from repro.graph.generators import grid_network

        g = grid_network(5, 5, weight_scheme="unit", seed=0)
        ref = yen_ksp(g, 0, 24, 10)
        got = peek_ksp(g, 0, 24, 10)
        assert np.allclose(got.distances, ref.distances)


class TestKInsensitivity:
    @staticmethod
    def _end_to_end_work(res) -> int:
        total = res.stats.total_work
        if res.prune is not None:
            total += res.prune.stats.total_work
        if res.compaction is not None:
            total += res.compaction.build_work
        return total

    def test_work_grows_slowly_with_k(self):
        """The paper's headline: 64x more K, barely more runtime.

        PeeK's end-to-end cost is dominated by the two pruning SSSPs, which
        do not depend on K at all, so its growth factor from K=2 to K=32
        must be far below the baseline's (paper: 1.1x vs 10.3x).
        """
        from repro.graph.generators import preferential_attachment

        g = preferential_attachment(800, 6, seed=5)
        s, t = random_reachable_pair(g, seed=7)
        w2 = self._end_to_end_work(peek_ksp(g, s, t, 2))
        w32 = self._end_to_end_work(peek_ksp(g, s, t, 32))
        base2 = PeeK(g, s, t, prune=False, compact=False).run(2).stats.total_work
        base32 = PeeK(g, s, t, prune=False, compact=False).run(32).stats.total_work
        peek_growth = w32 / max(w2, 1)
        base_growth = base32 / max(base2, 1)
        assert peek_growth < base_growth
        assert peek_growth < 3.0  # near-flat in K, as the paper reports
