"""Unit tests for the three compaction strategies and the adaptive rule."""

import numpy as np
import pytest

from repro.core.compaction import (
    EdgeSwapView,
    StatusArrayView,
    adaptive_compact,
    compact_edge_swap,
    compact_regenerate,
    compact_status_array,
)
from repro.errors import GraphFormatError, VertexError
from repro.graph.generators import erdos_renyi
from repro.sssp.delta_stepping import delta_stepping
from repro.sssp.dijkstra import dijkstra


@pytest.fixture
def pruned_case(medium_er):
    """A graph plus a realistic keep decision from actual pruning."""
    from repro.core.pruning import k_upper_bound_prune
    from tests.conftest import random_reachable_pair

    s, t = random_reachable_pair(medium_er, seed=13)
    pr = k_upper_bound_prune(medium_er, s, t, 4)
    return medium_er, pr.keep_vertices, pr.keep_edges, s, t


def live_adjacency(graph, keep_v, keep_e):
    """Reference live-edge set computed straight from the masks."""
    src = graph.edge_sources()
    live = keep_e & keep_v[src] & keep_v[graph.indices]
    return {
        (int(src[e]), int(graph.indices[e]), float(graph.weights[e]))
        for e in np.flatnonzero(live)
    }


class TestStatusArray:
    def test_neighbors_filtered(self, pruned_case):
        g, kv, ke, s, t = pruned_case
        view = compact_status_array(g, kv, ke)
        expect = live_adjacency(g, kv, ke)
        got = set()
        for v in np.flatnonzero(kv).tolist():
            ts, ws = view.neighbors(v)
            got.update((v, int(a), float(w)) for a, w in zip(ts, ws))
        assert got == expect

    def test_num_edges_is_live_count(self, pruned_case):
        g, kv, ke, s, t = pruned_case
        view = compact_status_array(g, kv, ke)
        assert view.num_edges == len(live_adjacency(g, kv, ke))

    def test_reverse_mask_permuted_correctly(self, pruned_case):
        g, kv, ke, s, t = pruned_case
        rev = compact_status_array(g, kv, ke).reverse()
        expect = {(b, a, w) for a, b, w in live_adjacency(g, kv, ke)}
        got = set()
        for v in range(g.num_vertices):
            ts, ws = rev.neighbors(v)
            got.update((v, int(a), float(w)) for a, w in zip(ts, ws))
        assert got == expect

    def test_bad_mask_length(self, medium_er):
        with pytest.raises(GraphFormatError):
            StatusArrayView(medium_er, np.ones(3, dtype=bool))

    def test_vertex_bounds(self, pruned_case):
        g, kv, ke, s, t = pruned_case
        view = compact_status_array(g, kv, ke)
        with pytest.raises(VertexError):
            view.neighbors(g.num_vertices)


class TestEdgeSwap:
    def test_live_edges_preserved(self, pruned_case):
        g, kv, ke, s, t = pruned_case
        view = compact_edge_swap(g, kv, ke)
        expect = live_adjacency(g, kv, ke)
        got = set()
        for v in np.flatnonzero(kv).tolist():
            ts, ws = view.neighbors(v)
            got.update((v, int(a), float(w)) for a, w in zip(ts, ws))
        assert got == expect

    def test_base_graph_untouched(self, pruned_case):
        g, kv, ke, s, t = pruned_case
        before = g.indices.copy()
        compact_edge_swap(g, kv, ke)
        assert np.array_equal(g.indices, before)

    def test_ranges_contiguous(self, pruned_case):
        g, kv, ke, s, t = pruned_case
        view = compact_edge_swap(g, kv, ke)
        begins, ends, idx, w, mask = view.adjacency_arrays()
        assert mask is None
        assert np.all(ends >= begins[: len(ends)])

    def test_edge_weight_lookup(self, pruned_case):
        g, kv, ke, s, t = pruned_case
        view = compact_edge_swap(g, kv, ke)
        ts, ws = view.neighbors(s)
        if ts.size:
            assert view.edge_weight(s, int(ts[0])) is not None

    def test_reverse_consistent(self, pruned_case):
        g, kv, ke, s, t = pruned_case
        rev = compact_edge_swap(g, kv, ke).reverse()
        expect = {(b, a, w) for a, b, w in live_adjacency(g, kv, ke)}
        got = set()
        for v in np.flatnonzero(kv).tolist():
            ts, ws = rev.neighbors(v)
            got.update((v, int(a), float(w)) for a, w in zip(ts, ws))
        assert got == expect


class TestRegeneration:
    def test_counts(self, pruned_case):
        g, kv, ke, s, t = pruned_case
        regen = compact_regenerate(g, kv, ke)
        assert regen.graph.num_vertices == int(kv.sum())
        assert regen.graph.num_edges == len(live_adjacency(g, kv, ke))

    def test_id_maps_inverse(self, pruned_case):
        g, kv, ke, s, t = pruned_case
        regen = compact_regenerate(g, kv, ke)
        for new, old in enumerate(regen.old_id.tolist()):
            assert regen.new_id[old] == new

    def test_map_vertex_raises_for_pruned(self, pruned_case):
        g, kv, ke, s, t = pruned_case
        regen = compact_regenerate(g, kv, ke)
        dead = int(np.flatnonzero(~kv)[0])
        with pytest.raises(VertexError):
            regen.map_vertex(dead)

    def test_edges_translated(self, pruned_case):
        g, kv, ke, s, t = pruned_case
        regen = compact_regenerate(g, kv, ke)
        expect = live_adjacency(g, kv, ke)
        got = {
            (int(regen.old_id[u]), int(regen.old_id[v]), w)
            for u, v, w in regen.graph.iter_edges()
        }
        assert got == expect

    def test_map_path_back(self, pruned_case):
        g, kv, ke, s, t = pruned_case
        regen = compact_regenerate(g, kv, ke)
        ns, nt = regen.map_vertex(s), regen.map_vertex(t)
        res = dijkstra(regen.graph, ns, target=nt)
        from repro.paths import reconstruct_path

        path = reconstruct_path(res.parent, ns, nt)
        back = regen.map_path_back(path)
        assert back[0] == s and back[-1] == t


class TestEquivalence:
    """All three strategies must expose identical downstream graphs."""

    def test_sssp_identical_across_strategies(self, pruned_case):
        g, kv, ke, s, t = pruned_case
        sa = compact_status_array(g, kv, ke)
        es = compact_edge_swap(g, kv, ke)
        regen = compact_regenerate(g, kv, ke)
        d_sa = dijkstra(sa, s).dist
        d_es = dijkstra(es, s).dist
        d_rg = dijkstra(regen.graph, regen.map_vertex(s)).dist
        assert np.allclose(
            np.nan_to_num(d_sa, posinf=-1), np.nan_to_num(d_es, posinf=-1)
        )
        # regenerated ids differ; compare through the map
        for old in np.flatnonzero(kv).tolist():
            new = int(regen.new_id[old])
            a, b = d_sa[old], d_rg[new]
            assert (np.isinf(a) and np.isinf(b)) or a == pytest.approx(b)

    def test_delta_stepping_works_on_views(self, pruned_case):
        g, kv, ke, s, t = pruned_case
        sa = compact_status_array(g, kv, ke)
        es = compact_edge_swap(g, kv, ke)
        assert np.allclose(
            np.nan_to_num(delta_stepping(sa, s).dist, posinf=-1),
            np.nan_to_num(delta_stepping(es, s).dist, posinf=-1),
        )


class TestAdaptive:
    def test_small_remnant_regenerates(self, medium_er):
        kv = np.zeros(medium_er.num_vertices, dtype=bool)
        kv[:5] = True
        res = adaptive_compact(medium_er, kv, alpha=0.1)
        assert res.strategy == "regeneration"
        assert res.is_regenerated

    def test_large_remnant_edge_swaps(self, medium_er):
        kv = np.ones(medium_er.num_vertices, dtype=bool)
        res = adaptive_compact(medium_er, kv, alpha=0.1)
        assert res.strategy == "edge-swap"

    def test_alpha_moves_the_threshold(self, medium_er):
        kv = np.ones(medium_er.num_vertices, dtype=bool)
        res = adaptive_compact(medium_er, kv, alpha=1.0)
        # everything kept: m_r == m is NOT < alpha*m, so still edge-swap
        assert res.strategy == "edge-swap"
        kv2 = kv.copy()
        kv2[medium_er.num_vertices // 2 :] = False
        assert (
            adaptive_compact(medium_er, kv2, alpha=1.0).strategy
            == "regeneration"
        )

    def test_force_overrides(self, medium_er):
        kv = np.zeros(medium_er.num_vertices, dtype=bool)
        kv[:5] = True
        res = adaptive_compact(medium_er, kv, force="status-array")
        assert res.strategy == "status-array"

    def test_bad_alpha(self, medium_er):
        with pytest.raises(ValueError):
            adaptive_compact(
                medium_er, np.ones(medium_er.num_vertices, bool), alpha=1.5
            )

    def test_bad_force(self, medium_er):
        with pytest.raises(ValueError):
            adaptive_compact(
                medium_er,
                np.ones(medium_er.num_vertices, bool),
                force="quantum",
            )

    def test_result_fields(self, pruned_case):
        g, kv, ke, s, t = pruned_case
        res = adaptive_compact(g, kv, ke)
        assert res.remaining_vertices == int(kv.sum())
        assert 0 <= res.remaining_edge_fraction <= 1
        assert res.build_work > 0
        assert res.build_seconds >= 0
