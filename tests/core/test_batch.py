"""Tests for the batched multi-query PeeK front end."""

import numpy as np
import pytest

from repro.core.batch import BatchPeeK
from repro.core.peek import peek_ksp
from repro.errors import UnreachableTargetError, VertexError
from repro.graph.build import from_edge_list
from repro.sssp.dijkstra import dijkstra
from tests.conftest import random_reachable_pair


class TestCorrectness:
    def test_matches_single_query_peek(self, medium_er):
        batch = BatchPeeK(medium_er)
        for seed in range(5):
            s, t = random_reachable_pair(medium_er, seed=seed)
            ref = peek_ksp(medium_er, s, t, 5).distances
            got = batch.query(s, t, 5).distances
            assert np.allclose(got, ref), (s, t)

    def test_result_artifacts(self, medium_er):
        batch = BatchPeeK(medium_er)
        s, t = random_reachable_pair(medium_er, seed=3)
        res = batch.query(s, t, 4)
        assert res.prune is not None
        assert res.compaction is not None
        for p in res.paths:
            assert p.source == s and p.target == t

    def test_dijkstra_kernel(self, medium_er):
        batch = BatchPeeK(medium_er, kernel="dijkstra")
        s, t = random_reachable_pair(medium_er, seed=4)
        assert np.allclose(
            batch.query(s, t, 4).distances, peek_ksp(medium_er, s, t, 4).distances
        )

    def test_unreachable(self):
        g = from_edge_list(3, [(0, 1, 1.0)])
        with pytest.raises(UnreachableTargetError):
            BatchPeeK(g).query(0, 2, 2)

    def test_bad_args(self, medium_er):
        batch = BatchPeeK(medium_er)
        with pytest.raises(VertexError):
            batch.query(0, 9999, 2)
        with pytest.raises(ValueError):
            batch.query(0, 1, 0)
        with pytest.raises(ValueError):
            BatchPeeK(medium_er, cache_size=0)


class TestCaching:
    def test_shared_target_hits_reverse_cache(self, medium_er):
        batch = BatchPeeK(medium_er)
        t = random_reachable_pair(medium_er, seed=1)[1]
        sources = []
        res = dijkstra(medium_er.reverse(), t)
        reach = np.flatnonzero(np.isfinite(res.dist))
        reach = reach[reach != t]
        for s in reach[:4].tolist():
            sources.append(s)
            batch.query(s, t, 3)
        info = batch.cache_info
        # 4 queries: 4 forward misses, 1 reverse miss, 3 reverse hits
        assert info["hits"] >= len(sources) - 1
        assert info["reverse_cached"] == 1

    def test_shared_source_hits_forward_cache(self, medium_er):
        batch = BatchPeeK(medium_er)
        s = 0
        res = dijkstra(medium_er, s)
        reach = np.flatnonzero(np.isfinite(res.dist))
        reach = reach[reach != s]
        for t in reach[:4].tolist():
            batch.query(s, int(t), 3)
        assert batch.cache_info["forward_cached"] == 1
        assert batch.cache_info["hits"] >= 3

    def test_lru_eviction(self, medium_er):
        batch = BatchPeeK(medium_er, cache_size=2)
        res = dijkstra(medium_er, 0)
        reach = np.flatnonzero(np.isfinite(res.dist))[:6]
        for t in reach.tolist():
            if t != 0:
                batch.query(0, int(t), 2)
        assert batch.cache_info["reverse_cached"] <= 2

    def test_clear_cache(self, medium_er):
        batch = BatchPeeK(medium_er)
        s, t = random_reachable_pair(medium_er, seed=2)
        batch.query(s, t, 2)
        batch.clear_cache()
        assert batch.cache_info["forward_cached"] == 0
        assert batch.cache_info["reverse_cached"] == 0
