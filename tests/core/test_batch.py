"""Tests for the batched multi-query PeeK front end."""

import numpy as np
import pytest

from repro.core.batch import BatchPeeK
from repro.core.peek import PeeK, peek_ksp
from repro.errors import UnreachableTargetError, VertexError
from repro.graph.build import from_edge_list
from repro.sssp.dijkstra import dijkstra
from tests.conftest import random_reachable_pair


class TestCorrectness:
    def test_matches_single_query_peek(self, medium_er):
        batch = BatchPeeK(medium_er)
        for seed in range(5):
            s, t = random_reachable_pair(medium_er, seed=seed)
            ref = peek_ksp(medium_er, s, t, 5).distances
            got = batch.query(s, t, 5).distances
            assert np.allclose(got, ref), (s, t)

    def test_result_artifacts(self, medium_er):
        batch = BatchPeeK(medium_er)
        s, t = random_reachable_pair(medium_er, seed=3)
        res = batch.query(s, t, 4)
        assert res.prune is not None
        assert res.compaction is not None
        for p in res.paths:
            assert p.source == s and p.target == t

    def test_dijkstra_kernel(self, medium_er):
        batch = BatchPeeK(medium_er, kernel="dijkstra")
        s, t = random_reachable_pair(medium_er, seed=4)
        assert np.allclose(
            batch.query(s, t, 4).distances, peek_ksp(medium_er, s, t, 4).distances
        )

    def test_unreachable(self):
        g = from_edge_list(3, [(0, 1, 1.0)])
        with pytest.raises(UnreachableTargetError):
            BatchPeeK(g).query(0, 2, 2)

    def test_bad_args(self, medium_er):
        batch = BatchPeeK(medium_er)
        with pytest.raises(VertexError):
            batch.query(0, 9999, 2)
        with pytest.raises(ValueError):
            batch.query(0, 1, 0)
        with pytest.raises(ValueError):
            BatchPeeK(medium_er, cache_size=0)


class TestBitwiseEquivalence:
    """BatchPeeK shares ``bound_and_masks`` with single-query PeeK, so the
    two front ends must agree *bitwise* — exact float distances, identical
    vertex tuples, identical pruning decision — not just approximately."""

    @pytest.mark.parametrize("kernel", ["delta", "dijkstra"])
    def test_query_bitwise_identical_to_peek(self, medium_er, kernel):
        batch = BatchPeeK(medium_er, kernel=kernel)
        for seed in range(4):
            s, t = random_reachable_pair(medium_er, seed=seed)
            ref = PeeK(medium_er, s, t, kernel=kernel).run(5)
            got = batch.query(s, t, 5)
            assert got.distances == ref.distances  # exact, no tolerance
            assert [p.vertices for p in got.paths] == [
                p.vertices for p in ref.paths
            ]

    def test_prune_decision_bitwise_identical(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=2)
        batch = BatchPeeK(medium_er)
        ref = PeeK(medium_er, s, t)
        ref.prepare(5)
        got = batch.prepare(s, t, 5).prune
        assert got.bound == ref.prune_result.bound
        assert np.array_equal(got.keep_vertices, ref.prune_result.keep_vertices)
        assert np.array_equal(got.keep_edges, ref.prune_result.keep_edges)
        assert np.array_equal(got.sp_sum, ref.prune_result.sp_sum)

    def test_strong_edge_prune_equivalent(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=3)
        batch = BatchPeeK(medium_er, strong_edge_prune=True)
        ref = PeeK(medium_er, s, t, strong_edge_prune=True).run(4)
        got = batch.query(s, t, 4)
        assert got.distances == ref.distances

    def test_cached_halves_do_not_change_answers(self, medium_er):
        """The same query through a warm cache is bitwise stable."""
        batch = BatchPeeK(medium_er)
        s, t = random_reachable_pair(medium_er, seed=1)
        cold = batch.query(s, t, 5)
        warm = batch.query(s, t, 5)
        assert batch.cache_info["hits"] >= 2
        assert warm.distances == cold.distances
        assert [p.vertices for p in warm.paths] == [
            p.vertices for p in cold.paths
        ]


class TestCaching:
    def test_shared_target_hits_reverse_cache(self, medium_er):
        batch = BatchPeeK(medium_er)
        t = random_reachable_pair(medium_er, seed=1)[1]
        sources = []
        res = dijkstra(medium_er.reverse(), t)
        reach = np.flatnonzero(np.isfinite(res.dist))
        reach = reach[reach != t]
        for s in reach[:4].tolist():
            sources.append(s)
            batch.query(s, t, 3)
        info = batch.cache_info
        # 4 queries: 4 forward misses, 1 reverse miss, 3 reverse hits
        assert info["hits"] >= len(sources) - 1
        assert info["reverse_cached"] == 1

    def test_shared_source_hits_forward_cache(self, medium_er):
        batch = BatchPeeK(medium_er)
        s = 0
        res = dijkstra(medium_er, s)
        reach = np.flatnonzero(np.isfinite(res.dist))
        reach = reach[reach != s]
        for t in reach[:4].tolist():
            batch.query(s, int(t), 3)
        assert batch.cache_info["forward_cached"] == 1
        assert batch.cache_info["hits"] >= 3

    def test_lru_eviction(self, medium_er):
        batch = BatchPeeK(medium_er, cache_size=2)
        res = dijkstra(medium_er, 0)
        reach = np.flatnonzero(np.isfinite(res.dist))[:6]
        for t in reach.tolist():
            if t != 0:
                batch.query(0, int(t), 2)
        assert batch.cache_info["reverse_cached"] <= 2

    def test_clear_cache(self, medium_er):
        batch = BatchPeeK(medium_er)
        s, t = random_reachable_pair(medium_er, seed=2)
        batch.query(s, t, 2)
        batch.clear_cache()
        assert batch.cache_info["forward_cached"] == 0
        assert batch.cache_info["reverse_cached"] == 0


class TestCombinedLRU:
    """``cache_size`` bounds forward AND reverse results *combined* (each
    is O(n) memory, so the combined count is the documented memory bound),
    with one LRU order across the two directions."""

    def test_cache_size_bounds_both_directions_together(self, medium_er):
        batch = BatchPeeK(medium_er, cache_size=3)
        for root in range(4):
            batch.forward_sssp(root)
            batch.reverse_sssp(root)
        info = batch.cache_info
        assert info["forward_cached"] + info["reverse_cached"] == 3

    def test_eviction_order_is_lru_across_directions(self, medium_er):
        batch = BatchPeeK(medium_er, cache_size=2)
        batch.forward_sssp(0)  # cache: [fwd 0]
        batch.reverse_sssp(1)  # cache: [fwd 0, rev 1]
        batch.forward_sssp(0)  # touch fwd 0 → rev 1 is now LRU
        batch.reverse_sssp(2)  # evicts rev 1, NOT the older-inserted fwd 0
        assert batch.misses == 3
        batch.forward_sssp(0)  # still cached
        assert batch.cache_info["hits"] == 2
        batch.reverse_sssp(1)  # was evicted: a fresh miss
        assert batch.misses == 4

    def test_same_root_is_distinct_per_direction(self, medium_er):
        batch = BatchPeeK(medium_er)
        batch.forward_sssp(5)
        batch.reverse_sssp(5)  # same root, different direction: a miss
        info = batch.cache_info
        assert info["hits"] == 0 and info["misses"] == 2
        assert info["forward_cached"] == 1 and info["reverse_cached"] == 1
        # a static (non-versioned) solver never touches the dyn counters
        assert info["prune_reused"] == info["prune_cold"] == 0
        assert info["invalidated"] == info["retained"] == 0
        assert info["prepared_cached"] == 0

    def test_counters_under_interleaved_queries(self, medium_er):
        batch = BatchPeeK(medium_er, cache_size=4)
        pairs = [random_reachable_pair(medium_er, seed=sd) for sd in (1, 2)]
        (s1, t1), (s2, t2) = pairs
        batch.query(s1, t1, 3)  # 2 misses (fwd s1, rev t1)
        batch.query(s2, t2, 3)  # 2 misses
        batch.query(s1, t1, 3)  # 2 hits
        batch.query(s2, t2, 3)  # 2 hits
        info = batch.cache_info
        assert info["hits"] == 4
        assert info["misses"] == 4
        assert info["forward_cached"] + info["reverse_cached"] == 4

    def test_interleaved_eviction_keeps_answers_exact(self, medium_er):
        """A thrashing cache (size 1) still returns bitwise-exact results."""
        batch = BatchPeeK(medium_er, cache_size=1)
        pairs = [random_reachable_pair(medium_er, seed=sd) for sd in (1, 2, 3)]
        for s, t in pairs * 2:
            got = batch.query(s, t, 3)
            ref = peek_ksp(medium_er, s, t, 3)
            assert got.distances == ref.distances
        assert batch.cache_info["forward_cached"] + (
            batch.cache_info["reverse_cached"]
        ) == 1
