"""Tests for pruning-as-preprocessing over every baseline (novelty iii)."""

import numpy as np
import pytest

from repro.core.integrate import PrunedKSP, pruned_ksp
from repro.errors import KSPError
from repro.graph.generators import erdos_renyi
from repro.ksp import ALGORITHMS, make_algorithm
from tests.conftest import random_reachable_pair

INNERS = sorted(set(ALGORITHMS) - {"PeeK"})


class TestCorrectness:
    @pytest.mark.parametrize("inner", INNERS)
    def test_same_results_as_unpruned(self, medium_er, inner):
        s, t = random_reachable_pair(medium_er, seed=51)
        ref = make_algorithm(inner, medium_er, s, t).run(6).distances
        got = pruned_ksp(medium_er, s, t, 6, inner=inner).distances
        assert np.allclose(got, ref), inner

    def test_paths_in_original_ids(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=51)
        res = pruned_ksp(medium_er, s, t, 5, inner="Yen")
        for p in res.paths:
            assert p.source == s and p.target == t
            for a, b in p.edges():
                assert medium_er.has_edge(a, b)

    def test_fan_graph_all_inners(self, fan_graph):
        for inner in INNERS:
            res = pruned_ksp(fan_graph, 0, 4, 3, inner=inner)
            assert res.distances == pytest.approx([2.0, 4.0, 6.0])


class TestGuards:
    def test_peek_inner_rejected(self, fan_graph):
        with pytest.raises(KSPError):
            PrunedKSP(fan_graph, 0, 4, inner="PeeK")

    def test_unknown_inner_rejected(self, fan_graph):
        with pytest.raises(KeyError):
            PrunedKSP(fan_graph, 0, 4, inner="AStar")

    def test_bad_k(self, fan_graph):
        with pytest.raises(ValueError):
            PrunedKSP(fan_graph, 0, 4, inner="Yen").run(0)


class TestBoost:
    def test_pruning_reduces_baseline_work(self):
        """The novelty-iii claim in work units: pruned Yen does less KSP
        work than plain Yen on a graph with a prunable majority."""
        g = erdos_renyi(400, 5.0, seed=61)
        s, t = random_reachable_pair(g, seed=6)
        plain = make_algorithm("Yen", g, s, t)
        plain.run(6)
        wrapper = PrunedKSP(g, s, t, inner="Yen")
        wrapper.run(6)
        assert wrapper.stats.total_work < plain.stats.total_work
        assert wrapper.prune_result is not None
        assert wrapper.compaction_result is not None
