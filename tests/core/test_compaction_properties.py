"""Hypothesis properties: the three compaction strategies are equivalent
under arbitrary keep decisions, and adaptive selection never changes
results."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compaction import (
    adaptive_compact,
    compact_edge_swap,
    compact_regenerate,
    compact_status_array,
)
from repro.graph.build import from_edge_array
from repro.sssp.dijkstra import dijkstra


@st.composite
def masked_graphs(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 30))
    m = int(rng.integers(1, 6 * n))
    g = from_edge_array(
        n,
        rng.integers(0, n, size=m),
        rng.integers(0, n, size=m),
        rng.random(m) + 0.01,
    )
    keep_v = rng.random(n) < draw(st.floats(0.2, 1.0))
    keep_e = rng.random(g.num_edges) < draw(st.floats(0.2, 1.0))
    # ensure at least one live vertex to root an SSSP from
    root = int(rng.integers(0, n))
    keep_v[root] = True
    return g, keep_v, keep_e, root


def _live_set(graph, kv, ke):
    src = graph.edge_sources()
    live = ke & kv[src] & kv[graph.indices]
    return {
        (int(src[e]), int(graph.indices[e]), round(float(graph.weights[e]), 12))
        for e in np.flatnonzero(live)
    }


@given(masked_graphs())
@settings(max_examples=50, deadline=None)
def test_three_strategies_expose_identical_graphs(case):
    g, kv, ke, root = case
    expect = _live_set(g, kv, ke)
    sa = compact_status_array(g, kv, ke)
    es = compact_edge_swap(g, kv, ke)
    rg = compact_regenerate(g, kv, ke)

    got_sa, got_es = set(), set()
    for v in np.flatnonzero(kv).tolist():
        ts, ws = sa.neighbors(v)
        got_sa.update((v, int(a), round(float(w), 12)) for a, w in zip(ts, ws))
        ts, ws = es.neighbors(v)
        got_es.update((v, int(a), round(float(w), 12)) for a, w in zip(ts, ws))
    got_rg = {
        (int(rg.old_id[u]), int(rg.old_id[v]), round(w, 12))
        for u, v, w in rg.graph.iter_edges()
    }
    assert got_sa == expect
    assert got_es == expect
    assert got_rg == expect


@given(masked_graphs())
@settings(max_examples=40, deadline=None)
def test_sssp_agrees_across_strategies(case):
    g, kv, ke, root = case
    sa = compact_status_array(g, kv, ke)
    es = compact_edge_swap(g, kv, ke)
    rg = compact_regenerate(g, kv, ke)
    d_sa = dijkstra(sa, root).dist
    d_es = dijkstra(es, root).dist
    assert np.allclose(
        np.nan_to_num(d_sa, posinf=-1), np.nan_to_num(d_es, posinf=-1)
    )
    d_rg = dijkstra(rg.graph, rg.map_vertex(root)).dist
    for old in np.flatnonzero(kv).tolist():
        a, b = d_sa[old], d_rg[int(rg.new_id[old])]
        assert (np.isinf(a) and np.isinf(b)) or abs(a - b) < 1e-9


@given(masked_graphs(), st.floats(0.0, 1.0))
@settings(max_examples=40, deadline=None)
def test_adaptive_choice_never_changes_live_edges(case, alpha):
    g, kv, ke, root = case
    expect = _live_set(g, kv, ke)
    comp = adaptive_compact(g, kv, ke, alpha=alpha)
    assert comp.remaining_edges == len(expect)
    assert comp.strategy in ("regeneration", "edge-swap")
