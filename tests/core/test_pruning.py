"""Unit tests for K-upper-bound pruning (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.pruning import k_upper_bound_prune
from repro.errors import UnreachableTargetError, VertexError
from repro.graph.build import from_edge_list
from repro.graph.generators import erdos_renyi
from repro.ksp.yen import yen_ksp
from repro.paths import INF
from tests.conftest import random_reachable_pair


class TestFanGraphWalkthrough:
    """The hand-checkable Algorithm 2 run (see the fixture docstring)."""

    def test_bound_is_kth_distance(self, fan_graph):
        pr = k_upper_bound_prune(fan_graph, 0, 4, 3)
        assert pr.bound == pytest.approx(6.0)

    def test_vertex_d_pruned(self, fan_graph):
        pr = k_upper_bound_prune(fan_graph, 0, 4, 3)
        assert not pr.keep_vertices[5]
        assert pr.keep_vertices[[0, 1, 2, 3, 4]].all()
        assert pr.num_kept_vertices == 5

    def test_overweight_edges_pruned(self, fan_graph):
        pr = k_upper_bound_prune(fan_graph, 0, 4, 3)
        weights = fan_graph.weights
        assert not pr.keep_edges[weights > 6.0].any()
        assert pr.keep_edges[weights <= 6.0].all()

    def test_k1_keeps_only_shortest_path(self, fan_graph):
        pr = k_upper_bound_prune(fan_graph, 0, 4, 1)
        assert pr.bound == pytest.approx(2.0)
        assert pr.keep_vertices[[0, 1, 4]].all()
        assert not pr.keep_vertices[[2, 3, 5]].any()

    def test_k4_keeps_everything_reachable(self, fan_graph):
        pr = k_upper_bound_prune(fan_graph, 0, 4, 4)
        assert pr.bound == pytest.approx(20.0)
        assert pr.keep_vertices.all()

    def test_fractions(self, fan_graph):
        pr = k_upper_bound_prune(fan_graph, 0, 4, 3)
        assert pr.pruned_vertex_fraction == pytest.approx(1 / 6)
        assert pr.pruned_edge_fraction(fan_graph) == pytest.approx(2 / 8)

    def test_sp_arrays_exposed(self, fan_graph):
        pr = k_upper_bound_prune(fan_graph, 0, 4, 3)
        assert pr.dist_src[0] == 0.0
        assert pr.dist_tgt[4] == 0.0
        assert pr.sp_sum[1] == pytest.approx(2.0)
        assert pr.sp_sum[5] == pytest.approx(20.0)


class TestInvalidPathHandling:
    def test_invalid_combined_paths_counted(self, loop_trap_graph):
        pr = k_upper_bound_prune(loop_trap_graph, 0, 4, 2)
        # vertex i's combined path is invalid, so λ >= 1
        assert pr.stats.inspected_invalid >= 1

    def test_bound_skips_invalid_paths(self, loop_trap_graph):
        # Only ONE simple s→t path exists (s f j t); with K=2 the scan runs
        # out of valid paths and must keep the bound conservative (inf).
        pr = k_upper_bound_prune(loop_trap_graph, 0, 4, 2)
        assert pr.bound == INF
        # reachable vertices all kept under the conservative bound
        finite = np.isfinite(pr.sp_sum)
        assert pr.keep_vertices[finite].all()


class TestFallbacks:
    def test_unreachable_target_raises(self):
        g = from_edge_list(3, [(0, 1, 1.0)])
        with pytest.raises(UnreachableTargetError):
            k_upper_bound_prune(g, 0, 2, 2)

    def test_unreachable_vertices_always_pruned(self):
        g = from_edge_list(4, [(0, 1, 1.0), (2, 3, 1.0), (2, 1, 5.0)])
        pr = k_upper_bound_prune(g, 0, 1, 5)
        assert not pr.keep_vertices[2]
        assert not pr.keep_vertices[3]

    def test_bad_args(self, fan_graph):
        with pytest.raises(VertexError):
            k_upper_bound_prune(fan_graph, 99, 4, 2)
        with pytest.raises(VertexError):
            k_upper_bound_prune(fan_graph, 0, 99, 2)
        with pytest.raises(ValueError):
            k_upper_bound_prune(fan_graph, 0, 4, 0)
        with pytest.raises(ValueError):
            k_upper_bound_prune(fan_graph, 0, 4, 2, kernel="bfs")


class TestKernels:
    def test_dijkstra_and_delta_agree(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=1)
        a = k_upper_bound_prune(medium_er, s, t, 8, kernel="delta")
        b = k_upper_bound_prune(medium_er, s, t, 8, kernel="dijkstra")
        assert a.bound == pytest.approx(b.bound)
        assert np.array_equal(a.keep_vertices, b.keep_vertices)

    def test_delta_kernel_logs_phases(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=1)
        pr = k_upper_bound_prune(medium_er, s, t, 8, kernel="delta")
        assert len(pr.stats.sssp_phase_work) > 0

    def test_stats_totals(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=1)
        pr = k_upper_bound_prune(medium_er, s, t, 8)
        assert pr.stats.total_work > 0
        assert pr.stats.inspected_paths >= 1


class TestSoundness:
    """Lemma 4.2 in executable form (Theorem 4.3 lives in test_peek)."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [1, 4, 8])
    def test_top_k_paths_survive_pruning(self, seed, k):
        g = erdos_renyi(60, 3.0, seed=seed + 200)
        s, t = random_reachable_pair(g, seed=seed)
        ref = yen_ksp(g, s, t, k)
        pr = k_upper_bound_prune(g, s, t, k)
        src = g.edge_sources()
        for p in ref.paths:
            for v in p.vertices:
                assert pr.keep_vertices[v], (seed, k, p)
            for a, b in p.edges():
                # at least one surviving (a, b) edge remains
                lo, hi = g.edge_range(a)
                ok = any(
                    pr.keep_edges[e] and g.indices[e] == b
                    for e in range(lo, hi)
                )
                assert ok, (seed, k, a, b)

    @pytest.mark.parametrize("seed", range(3))
    def test_strong_edge_prune_also_sound(self, seed):
        g = erdos_renyi(60, 3.0, seed=seed + 300)
        s, t = random_reachable_pair(g, seed=seed)
        k = 6
        ref = yen_ksp(g, s, t, k)
        pr = k_upper_bound_prune(g, s, t, k, strong_edge_prune=True)
        for p in ref.paths:
            for a, b in p.edges():
                lo, hi = g.edge_range(a)
                assert any(
                    pr.keep_edges[e] and g.indices[e] == b
                    for e in range(lo, hi)
                )

    def test_strong_edge_prune_is_stronger(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=4)
        weak = k_upper_bound_prune(medium_er, s, t, 4)
        strong = k_upper_bound_prune(medium_er, s, t, 4, strong_edge_prune=True)
        assert strong.keep_edges.sum() <= weak.keep_edges.sum()
