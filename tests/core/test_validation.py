"""Unit tests for the combined-path validity check (Figure 3(e))."""

import numpy as np

from repro.core.validation import combined_path, validate_combined_path
from repro.sssp.dijkstra import dijkstra


class TestCombinedPath:
    def test_figure3e_invalid_path(self, loop_trap_graph):
        """Vertex i's combined path s→f→j→i + i→j→t repeats j."""
        g = loop_trap_graph
        fwd = dijkstra(g, 0)
        rev = dijkstra(g.reverse(), 4)
        got = combined_path(fwd.parent, rev.parent, 0, 4, 3)
        assert got is not None
        src_path, tgt_path = got
        assert src_path == (0, 1, 2, 3)   # s f j i
        assert tgt_path == (3, 2, 4)       # i j t
        valid, full = validate_combined_path(src_path, tgt_path)
        assert not valid
        assert full == (0, 1, 2, 3, 2, 4)

    def test_valid_path_through_j(self, loop_trap_graph):
        g = loop_trap_graph
        fwd = dijkstra(g, 0)
        rev = dijkstra(g.reverse(), 4)
        src_path, tgt_path = combined_path(fwd.parent, rev.parent, 0, 4, 2)
        valid, full = validate_combined_path(src_path, tgt_path)
        assert valid
        assert full == (0, 1, 2, 4)

    def test_endpoint_vertices(self, loop_trap_graph):
        g = loop_trap_graph
        fwd = dijkstra(g, 0)
        rev = dijkstra(g.reverse(), 4)
        # v = source: src subpath is [s], tgt subpath is the whole path
        src_path, tgt_path = combined_path(fwd.parent, rev.parent, 0, 4, 0)
        assert src_path == (0,)
        valid, _ = validate_combined_path(src_path, tgt_path)
        assert valid
        # v = target
        src_path, tgt_path = combined_path(fwd.parent, rev.parent, 0, 4, 4)
        assert tgt_path == (4,)

    def test_detached_vertex_returns_none(self):
        parent_src = np.array([0, -1], dtype=np.int64)
        parent_tgt = np.array([1, 1], dtype=np.int64)
        assert combined_path(parent_src, parent_tgt, 0, 1, 1) is None

    def test_unreachable_target_side(self):
        parent_src = np.array([0, 0], dtype=np.int64)
        parent_tgt = np.array([-1, 1], dtype=np.int64)
        assert combined_path(parent_src, parent_tgt, 0, 1, 0) is None


class TestValidate:
    def test_shared_endpoint_not_a_duplicate(self):
        valid, full = validate_combined_path((0, 1), (1, 2))
        assert valid
        assert full == (0, 1, 2)

    def test_duplicate_detected_anywhere(self):
        valid, _ = validate_combined_path((0, 1, 2), (2, 3, 0))
        assert not valid

    def test_trivial_paths(self):
        valid, full = validate_combined_path((5,), (5,))
        assert valid
        assert full == (5,)
