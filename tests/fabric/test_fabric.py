"""The serving fabric end-to-end: kills, recovery, failover, elastic."""

import json

import pytest

from repro.distributed.comm import FaultPlan
from repro.dyn.stream import IncidentStream
from repro.fabric.elastic import ElasticPolicy
from repro.fabric.fabric import FabricConfig, ServingFabric, report_row
from repro.fabric.replica import ACTIVE, STANDBY
from repro.graph.suite import suite_graph
from repro.load.arrivals import arrival_process
from repro.load.mixes import make_mix

KILL = "fabric.heartbeat:rankfail:3@R1"
MIX = {"kind": "hotspot", "scc": True, "k": {"dist": "small_heavy", "k_max": 4}}
STEADY = {"kind": "poisson", "rate": 400.0}


@pytest.fixture(scope="module")
def graph():
    return suite_graph("LJ", "tiny")


def build(graph, *, inject=None, seed=0, **over):
    config = FabricConfig(replicas=3, seed=seed, **over)
    plan = FaultPlan.from_specs(inject, seed=seed) if inject else None
    return ServingFabric(
        graph, make_mix(graph, dict(MIX)), config=config, fault_plan=plan
    )


def run(fabric, *, horizon=0.5, max_queries=150, **kwargs):
    return fabric.run(
        arrival_process(dict(STEADY)),
        horizon=horizon,
        max_queries=max_queries,
        **kwargs,
    )


class TestKillRecovery:
    def test_kill_drain_recover(self, graph):
        fabric = build(graph, inject=[KILL])
        report = run(fabric)
        assert len(report.kills) == 1
        kill = report.kills[0]
        assert kill.replica == 1
        assert kill.recovered_at is not None and kill.recovered_at > kill.at
        assert kill.ttr == pytest.approx(kill.recovered_at - kill.at)
        assert kill.within_budget
        # the replica rejoined and the fleet ended fully active
        assert report.replica_states == {0: ACTIVE, 1: ACTIVE, 2: ACTIVE}
        assert report.dist["failures"] == 1

    def test_restored_replica_matches_authority(self, graph):
        fabric = build(graph, inject=[KILL])
        run(fabric)
        authority = fabric.authority
        restored = fabric.replicas[1].server
        assert restored.batch.version == authority.version

    def test_no_kill_no_failures(self, graph):
        report = run(build(graph))
        assert report.kills == []
        assert report.dist["failures"] == 0
        assert report.dispositions()["availability"] == 1.0

    def test_recovery_window_queries_are_answered(self, graph):
        fabric = build(graph, inject=[KILL])
        report = run(fabric)
        window = report.recovery_window_dispositions()
        served = {
            k for k, v in window.items() if v and k not in ("shed", "expired")
        }
        assert served <= {"complete", "degraded"}


class TestDeterminism:
    def test_double_run_byte_identical(self, graph):
        rows = [
            json.dumps(report_row("kill", run(build(graph, inject=[KILL]))))
            for _ in range(2)
        ]
        assert rows[0] == rows[1]

    def test_seed_changes_the_run(self, graph):
        a = run(build(graph, seed=0))
        b = run(build(graph, seed=1))
        assert [log.issued_at for log in a.logs] != [
            log.issued_at for log in b.logs
        ]  # different arrival streams


class TestFailoverEquivalence:
    def test_hedged_results_bitwise_match_unfailed_run(self, graph):
        """A query hedged off a killed replica returns exactly the result
        the unfailed fabric would have returned."""
        clean = run(build(graph), keep_results=True)
        failed = run(build(graph, inject=[KILL]), keep_results=True)
        hedged = [log for log in failed.logs if log.hedges > 0]
        assert hedged, "the seeded kill should strand at least one flight"
        for log in hedged:
            assert log.disposition == "complete"
            assert failed.results[log.request_id] == clean.results[log.request_id]

    def test_all_completed_results_match(self, graph):
        clean = run(build(graph), keep_results=True)
        failed = run(build(graph, inject=[KILL]), keep_results=True)
        done = {
            log.request_id for log in clean.logs if log.disposition == "complete"
        } & {
            log.request_id for log in failed.logs if log.disposition == "complete"
        }
        assert done
        for rid in done:
            assert clean.results[rid] == failed.results[rid]


class TestMutationConsistency:
    def test_kill_during_mutations_keeps_survivors_in_step(self, graph):
        """A replica killed while batches stream leaves every surviving
        (and recovered) replica at the authority's graph version."""
        fabric = build(graph, inject=["fabric.mutate:rankfail:2@R1"])
        batches = IncidentStream(seed=0, rate=60.0).batches(fabric.authority, 0.5)
        report = run(fabric, mutations=batches)
        assert report.mutation_batches > 0
        assert len(report.kills) == 1
        version = fabric.authority.version
        assert version > 0
        for rid in sorted(fabric.replicas):
            replica = fabric.replicas[rid]
            if replica.server is not None and replica.state == ACTIVE:
                assert replica.server.batch.version == version, rid

    def test_replay_counts_missed_batches(self, graph):
        fabric = build(graph, inject=["fabric.mutate:rankfail:1@R1"])
        batches = IncidentStream(seed=0, rate=120.0).batches(fabric.authority, 0.5)
        report = run(fabric, mutations=batches)
        kill = report.kills[0]
        assert kill.recovered_at is not None
        assert kill.missed_batches >= 0
        assert report.mutation_batches > kill.missed_batches


class _FakeReplica:
    def __init__(self, state, workers, load):
        self.state = state
        self.workers = workers
        self._load = load

    def load_at(self, t):
        return self._load


class TestElasticPolicy:
    def test_scale_up_picks_lowest_standby(self):
        policy = ElasticPolicy(cooldown_ticks=0)
        replicas = {
            0: _FakeReplica(ACTIVE, 4, 4),
            1: _FakeReplica(ACTIVE, 4, 4),
            3: _FakeReplica(STANDBY, 0, 0),
            2: _FakeReplica(STANDBY, 0, 0),
        }
        assert policy.decide(replicas, 0.0) == ("scale_up", 2)

    def test_scale_down_respects_floor(self):
        policy = ElasticPolicy(min_replicas=2, cooldown_ticks=0)
        replicas = {
            0: _FakeReplica(ACTIVE, 4, 0),
            1: _FakeReplica(ACTIVE, 4, 0),
        }
        assert policy.decide(replicas, 0.0) is None  # at the floor
        replicas[2] = _FakeReplica(ACTIVE, 4, 0)
        assert policy.decide(replicas, 0.0) == ("scale_down", 2)

    def test_cooldown_suppresses_flapping(self):
        policy = ElasticPolicy(min_replicas=1, cooldown_ticks=2)
        replicas = {
            0: _FakeReplica(ACTIVE, 4, 0),
            1: _FakeReplica(ACTIVE, 4, 0),
        }
        assert policy.decide(replicas, 0.0) == ("scale_down", 1)
        assert policy.decide(replicas, 0.1) is None  # cooling down
        assert policy.decide(replicas, 0.2) is None
        assert policy.decide(replicas, 0.3) == ("scale_down", 1)

    def test_fabric_scales_under_burst(self, graph):
        fabric = build(
            graph,
            max_replicas=5,
            min_replicas=2,
            elastic=ElasticPolicy(min_replicas=2),
        )
        report = fabric.run(
            arrival_process(
                {
                    "kind": "mmpp",
                    "rate_low": 200.0,
                    "rate_high": 800.0,
                    "dwell_low": 0.15,
                    "dwell_high": 0.05,
                }
            ),
            horizon=1.0,
            max_queries=600,
        )
        actions = [e.action for e in report.elastic_events]
        assert "scale_up" in actions
        assert "scale_down" in actions


class TestGuards:
    def test_closed_loop_rejected(self, graph):
        fabric = build(graph)
        with pytest.raises(ValueError, match="open-loop"):
            fabric.run(
                arrival_process({"kind": "closed", "users": 4, "think_mean": 0.01}),
                horizon=0.1,
            )
