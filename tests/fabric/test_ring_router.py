"""Consistent-hash ring + bounded-load router: determinism and spill."""

import pytest

from repro.fabric.replica import ACTIVE, DEAD, DRAINING, Flight, Replica
from repro.fabric.ring import HashRing
from repro.fabric.router import Router, ShardMap
from repro.graph.suite import suite_graph
from repro.serve.query import Query


class TestHashRing:
    def test_deterministic_across_instances(self):
        a = HashRing([0, 1, 2, 3])
        b = HashRing([0, 1, 2, 3])
        for key in ("shard0", "shard7", "q123"):
            assert a.preference(key) == b.preference(key)
            assert a.owner(key) == a.preference(key)[0]

    def test_preference_covers_all_members_once(self):
        ring = HashRing([0, 1, 2, 3])
        pref = ring.preference("shard3")
        assert sorted(pref) == [0, 1, 2, 3]
        assert len(set(pref)) == 4

    def test_limit_truncates(self):
        ring = HashRing([0, 1, 2, 3])
        assert ring.preference("shard3", limit=2) == ring.preference("shard3")[:2]

    def test_ownership_is_spread(self):
        ring = HashRing([0, 1, 2, 3])
        owners = {ring.owner(f"shard{i}") for i in range(64)}
        assert owners == {0, 1, 2, 3}  # vnodes spread 64 keys over all 4

    def test_membership_change_is_local(self):
        """Adding a member remaps only a fraction of the keys."""
        before = HashRing([0, 1, 2])
        after = HashRing([0, 1, 2, 3])
        keys = [f"shard{i}" for i in range(200)]
        moved = sum(before.owner(k) != after.owner(k) for k in keys)
        # consistent hashing: ~1/4 of keys move to the new member; a
        # modulo scheme would move ~3/4
        assert 0 < moved < 100


class _StubServer:
    """Just enough server surface for Replica bookkeeping."""

    def __init__(self, max_in_flight=2):
        self.max_in_flight = max_in_flight


def _occupy(replica, rid, finish):
    q = Query(0, 1, 2, request_id=rid)
    replica.occupy(Flight(q, replica.id, 0.0, 0.0, finish, result=None))


@pytest.fixture()
def replicas():
    return {
        i: Replica(i, _StubServer(), queue_depth=1, state=ACTIVE)
        for i in range(3)
    }


class TestRouter:
    def test_home_placement_when_idle(self, replicas):
        router = Router(HashRing(sorted(replicas)), replicas)
        for shard in range(8):
            home = router.preference(shard)[0]
            assert router.place(shard, 0.0) == home
        assert router.spills == 0

    def test_bounded_load_spills_down_preference(self, replicas):
        router = Router(HashRing(sorted(replicas)), replicas)
        shard = 0
        pref = router.preference(shard)
        home = replicas[pref[0]]
        # saturate the home replica's slots (2 workers + 1 queue)
        for i in range(home.slots):
            _occupy(home, f"h{i}", finish=10.0)
        placed = router.place(shard, 0.0)
        assert placed == pref[1]
        assert router.spills == 1

    def test_all_full_rejects(self, replicas):
        router = Router(HashRing(sorted(replicas)), replicas)
        for r in replicas.values():
            for i in range(r.slots):
                _occupy(r, f"r{r.id}x{i}", finish=10.0)
        assert router.place(0, 0.0) is None
        assert router.rejected == 1

    def test_draining_and_dead_not_routable(self, replicas):
        router = Router(HashRing(sorted(replicas)), replicas)
        pref = router.preference(0)
        replicas[pref[0]].state = DRAINING
        assert router.place(0, 0.0) == pref[1]
        replicas[pref[1]].state = DEAD
        assert router.place(0, 0.0) == pref[2]
        replicas[pref[2]].state = DEAD
        assert router.place(0, 0.0) is None

    def test_committed_flights_free_capacity(self, replicas):
        router = Router(HashRing(sorted(replicas)), replicas)
        pref = router.preference(0)
        home = replicas[pref[0]]
        for i in range(home.slots):
            _occupy(home, f"h{i}", finish=0.5)
        # at t=1.0 every flight has committed; home takes queries again
        assert router.place(0, 1.0) == pref[0]


class TestShardMap:
    def test_ranges_partition_the_vertex_set(self):
        graph = suite_graph("LJ", "tiny")
        smap = ShardMap(graph, 8)
        covered = 0
        for shard in range(8):
            lo, hi = smap.shard_range(shard)
            covered += hi - lo
            for v in (lo, hi - 1):
                if hi > lo:
                    assert smap.shard_of(v) == shard
        assert covered == graph.num_vertices

    def test_shards_touching(self):
        graph = suite_graph("LJ", "tiny")
        smap = ShardMap(graph, 4)
        lo1, _ = smap.shard_range(1)
        lo3, _ = smap.shard_range(3)
        assert smap.shards_touching([lo1, lo3]) == [1, 3]
        assert smap.shards_touching([]) == []
