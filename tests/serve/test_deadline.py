"""Deadline observance: expired budgets fail fast, tiny budgets stay bounded.

The fast tests pin the contract at every stage entry: an already-expired
deadline raises :class:`~repro.errors.KSPTimeout` before meaningful work.
The slow-marked tests (``REPRO_RUN_SLOW=1``) put a real tiny budget on a
medium-scale query and bound the *overshoot* — the gap between the budget
and the observed wall time — for both SSSP kernels.
"""

import os
import time

import numpy as np
import pytest

from repro.cancel import deadline_in
from repro.core.compaction import adaptive_compact
from repro.core.pruning import k_upper_bound_prune
from repro.errors import KSPTimeout
from repro.serve import FAILED, PARTIAL, QueryServer
from repro.sssp.delta_stepping import delta_stepping
from repro.sssp.dijkstra import dijkstra

from ..conftest import random_reachable_pair

_opt_in = pytest.mark.skipif(
    not os.environ.get("REPRO_RUN_SLOW"),
    reason="set REPRO_RUN_SLOW=1 to run deadline-overshoot tests",
)


def slow(fn):
    return pytest.mark.slow(_opt_in(fn))


EXPIRED = time.perf_counter() - 1.0  # an absolute deadline already in the past


class TestExpiredDeadlineFailsFast:
    def test_dijkstra(self, medium_er):
        with pytest.raises(KSPTimeout):
            dijkstra(medium_er, 0, deadline=EXPIRED)

    def test_delta_stepping(self, medium_er):
        with pytest.raises(KSPTimeout):
            delta_stepping(medium_er, 0, deadline=EXPIRED)

    @pytest.mark.parametrize("kernel", ["delta", "dijkstra"])
    def test_prune(self, medium_er, kernel):
        s, t = random_reachable_pair(medium_er, seed=1)
        with pytest.raises(KSPTimeout):
            k_upper_bound_prune(medium_er, s, t, 4, kernel=kernel, deadline=EXPIRED)

    def test_compact(self, medium_er):
        keep = np.ones(medium_er.num_vertices, dtype=bool)
        with pytest.raises(KSPTimeout):
            adaptive_compact(medium_er, keep, deadline=EXPIRED)

    def test_none_deadline_means_unbounded(self, medium_er):
        res = dijkstra(medium_er, 0, deadline=None)
        assert np.isfinite(res.dist[0])

    def test_server_expired_budget_is_failed_not_hang(self, medium_er):
        server = QueryServer(medium_er)
        s, t = random_reachable_pair(medium_er, seed=2)
        res = server.serve(s, t, 4, timeout=0.0)
        assert res.outcome in (FAILED, PARTIAL)
        assert "deadline" in res.error


# A tiny budget on a medium-scale graph: the checkpoints fire mid-pipeline,
# so the observed wall time may overshoot the budget only by the longest
# stretch between checkpoints, bounded here at well under a second.
BUDGET = 0.02
OVERSHOOT_BOUND = 1.0


def _medium_graph():
    from repro.graph.generators import erdos_renyi

    return erdos_renyi(30_000, 8.0, seed=4)


@slow
@pytest.mark.parametrize("kernel", ["delta", "dijkstra"])
def test_tiny_deadline_overshoot_bounded(kernel):
    g = _medium_graph()
    server = QueryServer(g, kernel=kernel)
    s, t = random_reachable_pair(g, seed=3)
    t0 = time.perf_counter()
    res = server.serve(s, t, 32, timeout=BUDGET)
    elapsed = time.perf_counter() - t0
    assert elapsed < BUDGET + OVERSHOOT_BOUND
    assert res.outcome in (FAILED, PARTIAL)  # the budget really did bind


@slow
@pytest.mark.parametrize("kernel", ["delta", "dijkstra"])
def test_tiny_deadline_prune_overshoot_bounded(kernel):
    g = _medium_graph()
    s, t = random_reachable_pair(g, seed=3)
    t0 = time.perf_counter()
    with pytest.raises(KSPTimeout):
        k_upper_bound_prune(g, s, t, 32, kernel=kernel, deadline=deadline_in(BUDGET))
    assert time.perf_counter() - t0 < BUDGET + OVERSHOOT_BOUND
