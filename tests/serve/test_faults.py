"""The deterministic fault-injection harness itself."""

import pytest

from repro.cancel import checkpoint, fault_scope, install_fault_hook
from repro.errors import KSPTimeout, UnreachableTargetError
from repro.serve.faults import FaultInjector, FaultRule, InjectedFault


class TestFaultRule:
    def test_exact_and_prefix_matching(self):
        r = FaultRule("sssp")
        assert r.matches("sssp")
        assert r.matches("sssp.delta")
        assert r.matches("sssp.dijkstra")
        assert not r.matches("ssspx")
        assert not r.matches("prune.scan")

    @pytest.mark.parametrize(
        "kind,exc",
        [
            ("timeout", KSPTimeout),
            ("unreachable", UnreachableTargetError),
            ("transient", InjectedFault),
            ("fatal", InjectedFault),
        ],
    )
    def test_error_kinds(self, kind, exc):
        err = FaultRule("x", kind=kind).make_error("x")
        assert isinstance(err, exc)

    def test_transient_flag(self):
        assert FaultRule("x", kind="transient").make_error("x").transient
        assert not FaultRule("x", kind="fatal").make_error("x").transient

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("x", kind="wat").make_error("x")


class TestFaultInjector:
    def test_fires_at_nth_hit_only(self):
        inj = FaultInjector([FaultRule("stage", at_hit=3)])
        inj("stage")
        inj("stage")
        with pytest.raises(KSPTimeout):
            inj("stage")
        inj("stage")  # burnt out (times=1)
        assert inj.fired == [("stage", "timeout")]
        assert inj.hits == [4]

    def test_times_fires_consecutively(self):
        inj = FaultInjector([FaultRule("s", kind="transient", at_hit=1, times=2)])
        with pytest.raises(InjectedFault):
            inj("s")
        with pytest.raises(InjectedFault):
            inj("s")
        inj("s")
        assert len(inj.fired) == 2

    def test_seed_is_deterministic(self):
        mk = lambda: FaultInjector(
            [FaultRule("s", at_hit=None, max_hit=10)], seed=42
        )
        assert mk().at_hits == mk().at_hits
        assert 1 <= mk().at_hits[0] <= 10

    def test_different_seeds_can_differ(self):
        hits = {
            FaultInjector(
                [FaultRule("s", at_hit=None, max_hit=1000)], seed=seed
            ).at_hits[0]
            for seed in range(20)
        }
        assert len(hits) > 1

    def test_installed_scopes_the_hook(self):
        inj = FaultInjector([FaultRule("boom", at_hit=1)])
        checkpoint(None, "boom")  # not installed: no fire
        with inj.installed():
            with pytest.raises(KSPTimeout):
                checkpoint(None, "boom")
        checkpoint(None, "boom")  # uninstalled again
        assert inj.fired == [("boom", "timeout")]

    def test_fault_scope_restores_previous_hook(self):
        seen = []
        prev = install_fault_hook(seen.append)
        try:
            with fault_scope(lambda stage: None):
                checkpoint(None, "inner")
            checkpoint(None, "outer")
            assert seen == ["outer"]
        finally:
            install_fault_hook(prev)
