"""The deterministic fault-injection harness itself."""

import pytest

from repro.cancel import checkpoint, fault_scope, install_fault_hook
from repro.errors import KSPTimeout, RankFailure, UnreachableTargetError
from repro.serve.faults import (
    FaultInjector,
    FaultRule,
    InjectedFault,
    parse_fault_spec,
)


class TestFaultRule:
    def test_exact_and_prefix_matching(self):
        r = FaultRule("sssp")
        assert r.matches("sssp")
        assert r.matches("sssp.delta")
        assert r.matches("sssp.dijkstra")
        assert not r.matches("ssspx")
        assert not r.matches("prune.scan")

    @pytest.mark.parametrize(
        "kind,exc",
        [
            ("timeout", KSPTimeout),
            ("unreachable", UnreachableTargetError),
            ("transient", InjectedFault),
            ("fatal", InjectedFault),
        ],
    )
    def test_error_kinds(self, kind, exc):
        err = FaultRule("x", kind=kind).make_error("x")
        assert isinstance(err, exc)

    def test_transient_flag(self):
        assert FaultRule("x", kind="transient").make_error("x").transient
        assert not FaultRule("x", kind="fatal").make_error("x").transient

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("x", kind="wat").make_error("x")

    def test_rankfail_kind(self):
        err = FaultRule("dist.sssp", kind="rankfail", rank=2).make_error(
            "dist.sssp.route"
        )
        assert isinstance(err, RankFailure)
        assert err.rank == 2


class TestParseFaultSpec:
    def test_minimal(self):
        r = parse_fault_spec("prune.scan:timeout")
        assert (r.stage, r.kind, r.at_hit, r.rank) == (
            "prune.scan", "timeout", None, None,
        )

    def test_with_at_hit(self):
        r = parse_fault_spec("sssp:transient:3")
        assert (r.kind, r.at_hit) == ("transient", 3)

    def test_with_rank(self):
        r = parse_fault_spec("dist.sssp.route:rankfail@2")
        assert (r.stage, r.kind, r.at_hit, r.rank) == (
            "dist.sssp.route", "rankfail", None, 2,
        )

    def test_full(self):
        r = parse_fault_spec("dist.sssp:rankfail:5@1")
        assert (r.at_hit, r.rank) == (5, 1)

    def test_replica_target(self):
        """``@R<N>`` scopes the rule to a serving-fabric replica, not a
        BSP rank — the two namespaces never mix in one rule."""
        r = parse_fault_spec("fabric.heartbeat:rankfail:3@R1")
        assert (r.stage, r.kind, r.at_hit) == ("fabric.heartbeat", "rankfail", 3)
        assert r.replica == 1
        assert r.rank is None

    def test_replica_target_lowercase(self):
        r = parse_fault_spec("fabric.mutate:rankfail@r2")
        assert (r.replica, r.rank) == (2, None)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "stageonly",
            "s:wat",
            "s:timeout:notanint",
            "s:timeout@notanint",
            "s:timeout:1:2",
            "s:rankfail@R",
            "s:rankfail@Rx",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)


class TestFaultInjector:
    def test_fires_at_nth_hit_only(self):
        inj = FaultInjector([FaultRule("stage", at_hit=3)])
        inj("stage")
        inj("stage")
        with pytest.raises(KSPTimeout):
            inj("stage")
        inj("stage")  # burnt out (times=1)
        assert inj.fired == [("stage", "timeout")]
        assert inj.hits == [4]

    def test_times_fires_consecutively(self):
        inj = FaultInjector([FaultRule("s", kind="transient", at_hit=1, times=2)])
        with pytest.raises(InjectedFault):
            inj("s")
        with pytest.raises(InjectedFault):
            inj("s")
        inj("s")
        assert len(inj.fired) == 2

    def test_seed_is_deterministic(self):
        mk = lambda: FaultInjector(
            [FaultRule("s", at_hit=None, max_hit=10)], seed=42
        )
        assert mk().at_hits == mk().at_hits
        assert 1 <= mk().at_hits[0] <= 10

    def test_different_seeds_can_differ(self):
        hits = {
            FaultInjector(
                [FaultRule("s", at_hit=None, max_hit=1000)], seed=seed
            ).at_hits[0]
            for seed in range(20)
        }
        assert len(hits) > 1

    def test_installed_scopes_the_hook(self):
        inj = FaultInjector([FaultRule("boom", at_hit=1)])
        checkpoint(None, "boom")  # not installed: no fire
        with inj.installed():
            with pytest.raises(KSPTimeout):
                checkpoint(None, "boom")
        checkpoint(None, "boom")  # uninstalled again
        assert inj.fired == [("boom", "timeout")]

    def test_fault_scope_restores_previous_hook(self):
        seen = []
        prev = install_fault_hook(seen.append)
        try:
            with fault_scope(lambda stage: None):
                checkpoint(None, "inner")
            checkpoint(None, "outer")
            assert seen == ["outer"]
        finally:
            install_fault_hook(prev)
