"""QueryServer: outcomes, the degradation chain, retry, admission control.

The acceptance bar for the serving layer: a fault injected at *any*
pipeline stage yields a degraded or partial result whose paths are still
exact — never a hang, never a silently wrong answer.
"""

import threading

import pytest

import repro
from repro.errors import (
    KSPError,
    KSPTimeout,
    ServerOverloadError,
    UnreachableTargetError,
    VertexError,
)
from repro.obs import Tracer, use_tracer
from repro.serve import (
    COMPLETE,
    DEGRADED,
    FAILED,
    PARTIAL,
    FaultInjector,
    FaultRule,
    InjectedFault,
    QueryServer,
    RetryPolicy,
    ServeResult,
)

from ..conftest import random_reachable_pair


@pytest.fixture
def server(medium_er) -> QueryServer:
    return QueryServer(medium_er, sanitize=True)


def reference_distances(graph, s, t, k):
    return repro.solve(graph, s, t, k=k).distances


class TestCleanServing:
    def test_complete_matches_solve(self, server, medium_er):
        s, t = random_reachable_pair(medium_er, seed=5)
        res = server.serve(s, t, 6)
        assert res.outcome == COMPLETE
        assert res.tier == "peek"
        assert res.attempts == 1
        assert res.error is None
        assert res.ok
        assert res.distances == reference_distances(medium_er, s, t, 6)
        assert server.counters[COMPLETE] == 1

    def test_fewer_paths_than_k_is_still_complete(self, diamond_graph):
        server = QueryServer(diamond_graph, sanitize=True)
        res = server.serve(0, 3, 10)
        assert res.outcome == COMPLETE
        assert len(res.paths) == 3  # the graph only has 3 simple paths

    def test_result_contract_fields(self, server, medium_er):
        s, t = random_reachable_pair(medium_er, seed=6)
        res = server.serve(s, t, 3)
        assert isinstance(res, ServeResult)
        assert res.k_requested == 3
        assert res.elapsed >= 0
        assert res.stats.sssp_calls > 0  # tier-1 stats travelled with the result

    @pytest.mark.parametrize("bad", [(-1, 5), (5, 10**9)])
    def test_out_of_range_raises(self, server, bad):
        with pytest.raises(VertexError):
            server.serve(*bad, 3)

    def test_source_equals_target_raises(self, server):
        with pytest.raises(KSPError):
            server.serve(7, 7, 3)

    def test_k_below_one_raises(self, server):
        with pytest.raises(ValueError):
            server.serve(0, 5, 0)


class TestDegradationChain:
    """A timeout in each stage must degrade, never hang or corrupt."""

    STAGES = [
        "prune.scan",
        "prune.masks",
        "compact",
        "compact.build",
        "sssp.delta",
        "sssp.dijkstra",
    ]

    @pytest.mark.parametrize("stage", STAGES)
    def test_stage_timeout_degrades_exactly(self, medium_er, stage):
        kernel = "dijkstra" if stage == "sssp.dijkstra" else "delta"
        server = QueryServer(medium_er, kernel=kernel, sanitize=True)
        s, t = random_reachable_pair(medium_er, seed=7)
        expect = reference_distances(medium_er, s, t, 5)
        inj = FaultInjector([FaultRule(stage, kind="timeout")])
        with inj.installed():
            res = server.serve(s, t, 5)
        assert inj.fired, f"no checkpoint visited for stage {stage!r}"
        assert res.outcome == DEGRADED
        assert res.tier == "optyen"
        assert res.error is not None and "injected timeout" in res.error
        # fallback results are exact, not approximate
        assert res.distances == expect
        assert server.counters[DEGRADED] == 1

    def test_ksp_timeout_yields_exact_partial_prefix(self, medium_er):
        server = QueryServer(medium_er, sanitize=True)
        s, t = random_reachable_pair(medium_er, seed=8)
        expect = reference_distances(medium_er, s, t, 8)
        # let tier 1's deviation loop yield a couple of paths, then cut it;
        # the same rule then also cuts the tier-2 fallback mid-run.
        inj = FaultInjector([FaultRule("OptYen", at_hit=3, times=1000)])
        with inj.installed():
            res = server.serve(s, t, 8)
        assert res.outcome == PARTIAL
        assert 0 < len(res.paths) < 8
        assert res.distances == expect[: len(res.paths)]

    def test_unreachable_fault_in_prune_degrades(self, medium_er):
        server = QueryServer(medium_er, sanitize=True)
        s, t = random_reachable_pair(medium_er, seed=9)
        inj = FaultInjector([FaultRule("prune", kind="unreachable")])
        with inj.installed():
            res = server.serve(s, t, 4)
        assert res.outcome == DEGRADED
        assert res.distances == reference_distances(medium_er, s, t, 4)

    def test_genuinely_unreachable_fails(self, fan_graph):
        server = QueryServer(fan_graph, sanitize=True)
        res = server.serve(4, 0, 3)  # fan edges all point toward t=4
        assert res.outcome == FAILED
        assert not res.ok
        assert res.paths == []
        assert "Unreachable" in res.error

    def test_timeout_in_both_tiers_fails(self, medium_er):
        server = QueryServer(medium_er, sanitize=True)
        s, t = random_reachable_pair(medium_er, seed=10)
        # every prune/sssp/compact/KSP checkpoint raises: no tier survives
        inj = FaultInjector(
            [FaultRule(st, times=10**6) for st in ("prune", "sssp", "OptYen")]
        )
        with inj.installed():
            res = server.serve(s, t, 4)
        assert res.outcome == FAILED
        assert res.paths == []


class TestRetryPolicy:
    def test_backoff_schedule(self):
        p = RetryPolicy(max_attempts=4, backoff_base=0.1, backoff_multiplier=3.0)
        assert [p.backoff(i) for i in (1, 2, 3)] == pytest.approx([0.1, 0.3, 0.9])

    def test_transient_fault_is_retried(self, medium_er):
        sleeps = []
        server = QueryServer(medium_er, sanitize=True, sleep=sleeps.append)
        s, t = random_reachable_pair(medium_er, seed=11)
        inj = FaultInjector([FaultRule("serve.attempt", kind="transient")])
        with inj.installed():
            res = server.serve(s, t, 4)
        assert res.outcome == COMPLETE
        assert res.attempts == 2
        assert sleeps == [server.retry.backoff(1)]
        assert server.counters["retries"] == 1
        assert res.distances == reference_distances(medium_er, s, t, 4)

    def test_transient_faults_exhaust_to_failed(self, medium_er):
        sleeps = []
        server = QueryServer(
            medium_er,
            sanitize=True,
            sleep=sleeps.append,
            retry=RetryPolicy(max_attempts=3),
        )
        s, t = random_reachable_pair(medium_er, seed=11)
        inj = FaultInjector(
            [FaultRule("serve.attempt", kind="transient", times=10**6)]
        )
        with inj.installed():
            res = server.serve(s, t, 4)
        assert res.outcome == FAILED
        assert res.attempts == 3
        assert len(sleeps) == 2
        assert "injected fault" in res.error

    def test_fatal_injected_fault_propagates(self, medium_er):
        server = QueryServer(medium_er, sanitize=True)
        s, t = random_reachable_pair(medium_er, seed=11)
        inj = FaultInjector([FaultRule("serve.attempt", kind="fatal")])
        with inj.installed(), pytest.raises(InjectedFault):
            server.serve(s, t, 4)
        # the slot was released even though serve raised
        assert server.in_flight == 0


class TestAdmissionControl:
    def test_max_in_flight_validated(self, diamond_graph):
        with pytest.raises(ValueError):
            QueryServer(diamond_graph, max_in_flight=0)

    def test_overload_sheds(self, diamond_graph):
        server = QueryServer(diamond_graph, sanitize=True, max_in_flight=2)
        entered = threading.Barrier(3)
        release = threading.Event()
        results = []

        # occupy both slots with queries parked right after admission
        original_admit = server._admit

        def admit_and_park():
            original_admit()
            entered.wait()
            release.wait()

        server._admit = admit_and_park
        threads = [
            threading.Thread(target=lambda: results.append(server.serve(0, 3, 2)))
            for _ in range(2)
        ]
        for th in threads:
            th.start()
        entered.wait()  # both workers admitted and parked
        assert server.in_flight == 2
        with pytest.raises(ServerOverloadError):
            server.serve(0, 3, 2)
        assert server.counters["shed"] == 1
        release.set()
        for th in threads:
            th.join()
        assert server.in_flight == 0
        assert all(r.outcome == COMPLETE for r in results)


class TestObservability:
    def test_outcome_recorded_on_span(self, medium_er):
        server = QueryServer(medium_er, sanitize=True)
        s, t = random_reachable_pair(medium_er, seed=12)
        tracer = Tracer()
        inj = FaultInjector([FaultRule("prune.scan", kind="timeout")])
        with use_tracer(tracer), inj.installed():
            server.serve(s, t, 4)
        (span,) = tracer.find("serve.query")
        assert span.attrs["outcome"] == DEGRADED
        assert span.attrs["tier"] == "optyen"
        assert span.attrs["attempts"] == 1
        assert tracer.total("serve.outcome.degraded") == 1
        assert tracer.total("serve.degraded_attempts") == 1

    def test_counters_accumulate_across_queries(self, medium_er):
        server = QueryServer(medium_er, sanitize=True)
        for seed in (5, 6):
            server.serve(*random_reachable_pair(medium_er, seed=seed), 3)
        assert server.counters[COMPLETE] == 2
        assert server.counters[FAILED] == 0


class TestCLI:
    def test_smoke_with_injection(self, capsys):
        from repro.serve.cli import main

        rc = main(
            [
                "--graph", "GT", "--scale", "tiny", "--queries", "3",
                "--k", "4", "--seed", "3", "--inject", "prune.scan:timeout",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "outcome=degraded" in out
        assert "outcomes:" in out

    def test_bad_inject_spec_rejected(self):
        from repro.serve.cli import main

        with pytest.raises(SystemExit):
            main(["--inject", "nonsense"])
