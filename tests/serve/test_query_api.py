"""The request-object API: Query, shared validation, retry jitter.

The redesign contract: ``serve(Query(...))`` and the legacy positional
form are the *same* code path (the legacy form builds a Query
internally), and ``repro.solve`` / ``QueryServer.serve`` validate
through one shared function — same error types, same messages, same
ordering, at both entry points.
"""

from random import Random

import pytest

import repro
from repro.errors import KSPError, VertexError
from repro.serve import COMPLETE, Query, QueryServer, RetryPolicy, validate_query

from ..conftest import random_reachable_pair


class TestQueryDataclass:
    def test_frozen_and_defaulted(self):
        q = Query(1, 2, 3)
        assert (q.timeout, q.request_id, q.issued_at) == (None, "", 0.0)
        with pytest.raises(AttributeError):
            q.k = 9

    def test_with_timeout(self):
        q = Query(1, 2, 3, timeout=0.5, request_id="r1")
        q2 = q.with_timeout(0.1)
        assert q2.timeout == 0.1
        assert (q2.source, q2.target, q2.k, q2.request_id) == (1, 2, 3, "r1")
        assert q.timeout == 0.5  # original untouched


class TestServeForms:
    def test_query_form_matches_legacy_form(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=5)
        legacy = QueryServer(medium_er).serve(s, t, 4, timeout=5.0)
        modern = QueryServer(medium_er).serve(Query(s, t, 4, timeout=5.0))
        assert legacy.outcome == modern.outcome == COMPLETE
        assert legacy.distances == modern.distances
        assert [p.vertices for p in legacy.paths] == [
            p.vertices for p in modern.paths
        ]

    def test_legacy_form_constructs_the_query(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=6)
        res = QueryServer(medium_er).serve(s, t, 3, timeout=2.0)
        assert res.query == Query(s, t, 3, timeout=2.0)

    def test_result_carries_query_and_timing(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=7)
        q = Query(s, t, 2, request_id="abc")
        res = QueryServer(medium_er).serve(q, queue_time=0.25)
        assert res.query is q
        assert res.queue_time == 0.25
        assert res.service_time == res.elapsed

    def test_mixed_forms_rejected(self, medium_er):
        server = QueryServer(medium_er)
        with pytest.raises(TypeError, match="not both"):
            server.serve(Query(0, 1, 2), 5)
        with pytest.raises(TypeError, match="not both"):
            server.serve(Query(0, 1, 2), timeout=1.0)
        with pytest.raises(TypeError, match="positionally"):
            server.serve(0, 1)


class TestSharedValidation:
    """solve() and serve() reject bad queries identically."""

    cases = (
        # (query fields, exception type)
        ((0, 999_999, 1), VertexError),
        ((-1, 1, 1), VertexError),
        ((3, 3, 1), KSPError),
        ((0, 1, 0), ValueError),
    )

    @pytest.mark.parametrize("fields,exc", cases)
    def test_same_error_both_entry_points(self, medium_er, fields, exc):
        s, t, k = fields
        with pytest.raises(exc) as via_solve:
            repro.solve(medium_er, s, t, k=k)
        with pytest.raises(exc) as via_serve:
            QueryServer(medium_er).serve(Query(s, t, k))
        assert str(via_solve.value) == str(via_serve.value)

    def test_ordering_range_before_self_loop(self, medium_er):
        # out-of-range AND source==target: range wins, at both doors
        n = medium_er.num_vertices
        with pytest.raises(VertexError):
            validate_query(medium_er, Query(n, n, 1))

    def test_server_counters_untouched_by_rejection(self, medium_er):
        server = QueryServer(medium_er)
        with pytest.raises(ValueError):
            server.serve(Query(0, 1, 0))
        assert all(v == 0 for v in server.counters.values())
        assert server.in_flight == 0


class TestRetryJitter:
    def test_no_rng_means_exact_schedule(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_multiplier=2.0, jitter=0.5)
        assert policy.backoff(1) == 0.1
        assert policy.backoff(2) == 0.2
        assert policy.backoff(1, rng=None) == 0.1

    def test_jitter_bounded_and_seeded(self):
        policy = RetryPolicy(backoff_base=0.1, jitter=0.25)
        draws = [policy.backoff(1, rng=Random(3)) for _ in range(5)]
        assert len(set(draws)) == 1  # same seed, same sleep: the contract
        rng = Random(4)
        for _ in range(200):
            d = policy.backoff(1, rng=rng)
            assert 0.075 <= d <= 0.125  # 0.1 * [1 - j, 1 + j]

    def test_jitter_validated(self):
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.0)

    def test_zero_jitter_ignores_rng(self):
        policy = RetryPolicy(backoff_base=0.1)
        assert policy.backoff(2, rng=Random(0)) == pytest.approx(0.2)


class TestBudgetFractionValidation:
    def test_rejects_out_of_range(self, medium_er):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="tier1_budget_fraction"):
                QueryServer(medium_er, tier1_budget_fraction=bad)

    def test_accepts_full_budget(self, medium_er):
        QueryServer(medium_er, tier1_budget_fraction=1.0)
