"""Unit tests for graph metrics + the suite's structural-family claims."""

import math

import pytest

from repro.graph.generators import erdos_renyi, preferential_attachment, rmat
from repro.graph.metrics import degree_gini, reachable_fraction, summarize
from repro.graph.suite import suite_graph


class TestGini:
    def test_uniform_degrees_near_zero(self):
        from repro.graph.generators import grid_network

        g = grid_network(10, 10, seed=0)
        assert degree_gini(g) < 0.2

    def test_scale_free_is_skewed(self):
        g = preferential_attachment(1500, 6, seed=0)
        assert degree_gini(g) > 0.35

    def test_rmat_more_skewed_than_er(self):
        er = erdos_renyi(1024, 8.0, seed=1)
        rm = rmat(10, 8, seed=1)
        assert degree_gini(rm) > degree_gini(er)

    def test_empty_graph(self):
        from repro.graph.build import from_edge_list

        assert degree_gini(from_edge_list(3, [])) == 0.0


class TestSummary:
    def test_fields(self, medium_er):
        s = summarize(medium_er, diameter_samples=2)
        assert s.num_vertices == medium_er.num_vertices
        assert s.num_edges == medium_er.num_edges
        assert s.avg_degree == pytest.approx(
            medium_er.num_edges / medium_er.num_vertices
        )
        assert s.max_out_degree >= 1
        assert s.weight_min > 0
        assert not math.isnan(s.effective_diameter)
        assert len(s.row()) == 8

    def test_reachable_fraction(self, medium_er):
        frac = reachable_fraction(medium_er, 0)
        assert 0 < frac <= 1


class TestSuiteFamilies:
    """The DESIGN.md substitution claim, measured."""

    def test_social_and_rmat_families_are_skewed(self):
        for name in ("R21", "LJ", "GT"):
            g = suite_graph(name, "tiny")
            assert degree_gini(g) > 0.3, name

    def test_weight_schemes_summary(self):
        random_w = summarize(suite_graph("LJ", "tiny"), diameter_samples=1)
        unit_w = summarize(suite_graph("LJU", "tiny"), diameter_samples=1)
        real_w = summarize(suite_graph("GT", "tiny"), diameter_samples=1)
        assert unit_w.weight_min == unit_w.weight_max == 1.0
        assert random_w.weight_max <= 1.0
        assert real_w.weight_max > 1.0  # heavy-tailed "real" weights
