"""Unit tests for :mod:`repro.graph.build`."""

import numpy as np
import pytest

from repro.errors import GraphFormatError, InvalidWeightError
from repro.graph.build import (
    assign_weights,
    dedup_edges,
    from_edge_array,
    from_edge_list,
    from_networkx,
    to_networkx,
)
from repro.graph.generators import erdos_renyi


class TestFromEdgeArray:
    def test_basic(self):
        g = from_edge_array(
            3, np.array([0, 1]), np.array([1, 2]), np.array([1.0, 2.0])
        )
        assert g.num_edges == 2
        assert g.edge_weight(1, 2) == 2.0

    def test_scalar_weight(self):
        g = from_edge_array(3, np.array([0, 1]), np.array([1, 2]), 7.0)
        assert g.edge_weight(0, 1) == 7.0

    def test_self_loops_dropped(self):
        g = from_edge_array(3, np.array([0, 1, 1]), np.array([0, 2, 1]), 1.0)
        assert g.num_edges == 1
        assert not g.has_edge(0, 0)

    def test_self_loops_kept_when_asked(self):
        g = from_edge_array(
            2, np.array([0]), np.array([0]), 1.0, drop_self_loops=False
        )
        assert g.has_edge(0, 0)

    def test_dedup_keeps_min_weight(self):
        g = from_edge_array(
            2,
            np.array([0, 0, 0]),
            np.array([1, 1, 1]),
            np.array([3.0, 1.0, 2.0]),
        )
        assert g.num_edges == 1
        assert g.edge_weight(0, 1) == 1.0

    def test_no_dedup(self):
        g = from_edge_array(
            2, np.array([0, 0]), np.array([1, 1]), np.array([3.0, 1.0]), dedup=False
        )
        assert g.num_edges == 2

    def test_out_of_range_raises(self):
        with pytest.raises(GraphFormatError):
            from_edge_array(2, np.array([0]), np.array([5]), 1.0)

    def test_negative_weight_raises(self):
        with pytest.raises(InvalidWeightError):
            from_edge_array(2, np.array([0]), np.array([1]), -1.0)

    def test_shape_mismatch(self):
        with pytest.raises(GraphFormatError):
            from_edge_array(2, np.array([0, 1]), np.array([1]), 1.0)

    def test_empty_edges(self):
        g = from_edge_array(
            3, np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0)
        )
        assert g.num_vertices == 3
        assert g.num_edges == 0


class TestDedupEdges:
    def test_keeps_lightest_of_each_pair(self):
        src = np.array([0, 0, 1, 0])
        dst = np.array([1, 1, 2, 2])
        w = np.array([2.0, 1.0, 3.0, 4.0])
        s, d, ww = dedup_edges(src, dst, w)
        assert len(s) == 3
        pairs = {(int(a), int(b)): float(x) for a, b, x in zip(s, d, ww)}
        assert pairs[(0, 1)] == 1.0


class TestFromEdgeList:
    def test_two_tuples_use_default_weight(self):
        g = from_edge_list(3, [(0, 1), (1, 2)], default_weight=2.5)
        assert g.edge_weight(0, 1) == 2.5

    def test_bad_tuple_length(self):
        with pytest.raises(GraphFormatError):
            from_edge_list(3, [(0, 1, 1.0, 9)])


class TestNetworkxBridge:
    def test_round_trip(self):
        g = erdos_renyi(40, 3.0, seed=4)
        back = from_networkx(to_networkx(g))
        assert back.structurally_equal(g)

    def test_undirected_expands_both_directions(self):
        import networkx as nx

        ug = nx.Graph()
        ug.add_nodes_from([0, 1])
        ug.add_edge(0, 1, weight=2.0)
        g = from_networkx(ug)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_bad_labels_rejected(self):
        import networkx as nx

        h = nx.DiGraph()
        h.add_edge("a", "b")
        with pytest.raises(GraphFormatError):
            from_networkx(h)


class TestAssignWeights:
    def test_unit(self):
        g = assign_weights(erdos_renyi(20, 2.0, seed=0), "unit")
        assert np.all(g.weights == 1.0)

    def test_random_in_unit_interval(self):
        g = assign_weights(erdos_renyi(20, 2.0, seed=0), "random", seed=1)
        assert np.all(g.weights > 0.0)
        assert np.all(g.weights <= 1.0)

    def test_real_heavy_tailed_positive(self):
        g = assign_weights(erdos_renyi(200, 4.0, seed=0), "real", seed=1)
        assert np.all(g.weights > 0.0)
        # log-normal: mean noticeably above median
        assert g.weights.mean() > np.median(g.weights)

    def test_deterministic_given_seed(self):
        base = erdos_renyi(20, 2.0, seed=0)
        a = assign_weights(base, "random", seed=5)
        b = assign_weights(base, "random", seed=5)
        assert np.array_equal(a.weights, b.weights)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            assign_weights(erdos_renyi(5, 1.0, seed=0), "bogus")

    def test_structure_preserved(self):
        base = erdos_renyi(20, 2.0, seed=0)
        rw = assign_weights(base, "real", seed=2)
        assert np.array_equal(base.indptr, rw.indptr)
        assert np.array_equal(base.indices, rw.indices)
