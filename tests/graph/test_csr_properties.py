"""Hypothesis property tests for the CSR substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.build import from_edge_array, from_edge_list


@st.composite
def edge_sets(draw, max_n=20, max_m=60):
    n = draw(st.integers(2, max_n))
    m = draw(st.integers(0, max_m))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    w = rng.random(m) * 10 + 0.01
    return n, src, dst, w


@given(edge_sets())
@settings(max_examples=50, deadline=None)
def test_iter_edges_round_trip(case):
    """graph -> edge list -> graph is the identity (post-dedup)."""
    n, src, dst, w = case
    g = from_edge_array(n, src, dst, w)
    rebuilt = from_edge_list(n, list(g.iter_edges()))
    assert rebuilt.structurally_equal(g)


@given(edge_sets())
@settings(max_examples=50, deadline=None)
def test_reverse_is_involution(case):
    n, src, dst, w = case
    g = from_edge_array(n, src, dst, w)
    rr = from_edge_list(n, list(g.reverse().reverse().iter_edges()))
    assert rr.structurally_equal(g)


@given(edge_sets())
@settings(max_examples=50, deadline=None)
def test_degree_sums(case):
    n, src, dst, w = case
    g = from_edge_array(n, src, dst, w)
    assert int(g.out_degrees().sum()) == g.num_edges
    rev = g.reverse()
    assert int(rev.out_degrees().sum()) == g.num_edges


@given(edge_sets(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_induced_subgraph_edges_subset(case, mask_seed):
    n, src, dst, w = case
    g = from_edge_array(n, src, dst, w)
    keep = np.random.default_rng(mask_seed).random(n) < 0.6
    sub, new_id, old_id = g.induced_subgraph(keep)
    # every subgraph edge maps to an original edge between kept vertices
    for u, v, weight in sub.iter_edges():
        ou, ov = int(old_id[u]), int(old_id[v])
        assert keep[ou] and keep[ov]
        assert g.edge_weight(ou, ov) is not None


@given(edge_sets())
@settings(max_examples=40, deadline=None)
def test_dedup_idempotent(case):
    n, src, dst, w = case
    g = from_edge_array(n, src, dst, w)
    again = from_edge_array(
        n, g.edge_sources(), g.indices, g.weights
    )
    assert again.num_edges == g.num_edges
