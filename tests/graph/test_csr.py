"""Unit tests for :class:`repro.graph.csr.CSRGraph`."""

import numpy as np
import pytest

from repro.errors import GraphFormatError, InvalidWeightError, VertexError
from repro.graph.build import from_edge_list
from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi


def simple_graph() -> CSRGraph:
    return from_edge_list(4, [(0, 1, 1.0), (0, 2, 2.0), (1, 3, 3.0), (2, 3, 4.0)])


class TestConstruction:
    def test_counts(self):
        g = simple_graph()
        assert g.num_vertices == 4
        assert g.num_edges == 4

    def test_paper_aliases(self):
        g = simple_graph()
        assert g.n == g.num_vertices
        assert g.m == g.num_edges

    def test_empty_graph(self):
        g = CSRGraph(
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_isolated_vertices(self):
        g = from_edge_list(5, [(0, 1, 1.0)])
        assert g.out_degree(4) == 0

    def test_bad_indptr_start(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([1, 1]), np.empty(0, np.int64), np.empty(0))

    def test_decreasing_indptr(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 1]), np.array([1.0, 1.0]))

    def test_target_out_of_range(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 1]), np.array([5]), np.array([1.0]))

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(InvalidWeightError):
            CSRGraph(np.array([0, 1]), np.array([0]), np.array([0.0]))

    def test_nan_weight_rejected(self):
        with pytest.raises(InvalidWeightError):
            CSRGraph(np.array([0, 1]), np.array([0]), np.array([float("nan")]))

    def test_indptr_edge_count_mismatch(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(np.array([0, 2]), np.array([0]), np.array([1.0]))


class TestAdjacency:
    def test_neighbors_are_views(self):
        g = simple_graph()
        t, w = g.neighbors(0)
        assert t.base is g.indices or t.base is not None  # a view, not a copy
        assert list(t) == [1, 2]
        assert list(w) == [1.0, 2.0]

    def test_out_degrees(self):
        g = simple_graph()
        assert list(g.out_degrees()) == [2, 1, 1, 0]
        assert g.out_degree(0) == 2

    def test_vertex_range_checked(self):
        g = simple_graph()
        with pytest.raises(VertexError):
            g.neighbors(4)
        with pytest.raises(VertexError):
            g.out_degree(-1)

    def test_has_edge_and_weight(self):
        g = simple_graph()
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert g.edge_weight(0, 2) == 2.0
        assert g.edge_weight(2, 0) is None

    def test_parallel_edges_weight_is_min(self):
        g = from_edge_list(2, [(0, 1, 5.0), (0, 1, 2.0)], dedup=False)
        assert g.edge_weight(0, 1) == 2.0

    def test_iter_edges(self):
        g = simple_graph()
        edges = list(g.iter_edges())
        assert (0, 1, 1.0) in edges
        assert len(edges) == 4

    def test_edge_sources(self):
        g = simple_graph()
        assert list(g.edge_sources()) == [0, 0, 1, 2]

    def test_adjacency_arrays_protocol(self):
        g = simple_graph()
        begins, ends, idx, w, mask = g.adjacency_arrays()
        assert mask is None
        assert list(idx[begins[0] : ends[0]]) == [1, 2]


class TestReverse:
    def test_reverse_edges(self):
        g = simple_graph()
        r = g.reverse()
        assert r.has_edge(1, 0)
        assert r.has_edge(3, 1)
        assert r.edge_weight(3, 2) == 4.0
        assert r.num_edges == g.num_edges

    def test_reverse_is_cached_and_involutive(self):
        g = simple_graph()
        assert g.reverse() is g.reverse()
        assert g.reverse().reverse() is g

    def test_reverse_of_random_graph_preserves_edge_multiset(self):
        g = erdos_renyi(50, 3.0, seed=1)
        fwd = sorted((u, v, w) for u, v, w in g.iter_edges())
        rev = sorted((v, u, w) for u, v, w in g.reverse().iter_edges())
        assert fwd == rev


class TestEquality:
    def test_structural_equality_ignores_order(self):
        a = from_edge_list(3, [(0, 1, 1.0), (0, 2, 2.0)], dedup=False)
        b = from_edge_list(3, [(0, 2, 2.0), (0, 1, 1.0)], dedup=False)
        assert a.structurally_equal(b)

    def test_structural_inequality(self):
        a = from_edge_list(3, [(0, 1, 1.0)])
        b = from_edge_list(3, [(0, 1, 2.0)])
        assert not a.structurally_equal(b)

    def test_different_sizes_unequal(self):
        a = from_edge_list(3, [(0, 1, 1.0)])
        b = from_edge_list(4, [(0, 1, 1.0)])
        assert not a.structurally_equal(b)


class TestSortedCopy:
    """The single-lexsort sorted_copy must equal a per-vertex reference sort."""

    @staticmethod
    def _reference_sorted(g):
        indices = g.indices.copy()
        weights = g.weights.copy()
        for v in range(g.num_vertices):
            lo, hi = int(g.indptr[v]), int(g.indptr[v + 1])
            order = sorted(range(lo, hi), key=lambda e: (indices[e], weights[e]))
            indices[lo:hi] = [g.indices[e] for e in order]
            weights[lo:hi] = [g.weights[e] for e in order]
        return indices, weights

    def test_matches_per_vertex_sort(self):
        for seed in (0, 1, 2):
            g = erdos_renyi(60, 5.0, seed=seed)
            got = g.sorted_copy()
            ref_idx, ref_w = self._reference_sorted(g)
            assert np.array_equal(got.indptr, g.indptr)
            assert np.array_equal(got.indices, ref_idx)
            assert np.array_equal(got.weights, ref_w)

    def test_parallel_edges_sorted_by_weight(self):
        g = from_edge_list(
            2, [(0, 1, 3.0), (0, 1, 1.0), (0, 1, 2.0)], dedup=False
        )
        s = g.sorted_copy()
        assert list(s.weights) == [1.0, 2.0, 3.0]

    def test_empty_graph(self):
        g = from_edge_list(3, [])
        s = g.sorted_copy()
        assert s.num_edges == 0 and s.num_vertices == 3
        assert s.indptr is not g.indptr  # a real copy

    def test_does_not_mutate_original(self):
        g = from_edge_list(2, [(0, 1, 2.0), (0, 1, 1.0)], dedup=False)
        before = g.weights.copy()
        g.sorted_copy()
        assert np.array_equal(g.weights, before)


class TestSubgraph:
    def test_induced_subgraph_keeps_internal_edges(self):
        g = simple_graph()
        keep = np.array([True, True, False, True])
        sub, new_id, old_id = g.induced_subgraph(keep)
        assert sub.num_vertices == 3
        assert list(old_id) == [0, 1, 3]
        # edges 0->1 and 1->3 survive; 0->2 and 2->3 die
        assert sub.num_edges == 2
        assert sub.has_edge(int(new_id[0]), int(new_id[1]))
        assert sub.has_edge(int(new_id[1]), int(new_id[3]))

    def test_bad_mask_length(self):
        g = simple_graph()
        with pytest.raises(GraphFormatError):
            g.induced_subgraph(np.array([True]))

    def test_keep_everything_is_identity(self):
        g = erdos_renyi(30, 3.0, seed=2)
        sub, new_id, old_id = g.induced_subgraph(np.ones(30, dtype=bool))
        assert sub.structurally_equal(g)
        assert list(new_id) == list(range(30))


def test_memory_bytes_positive():
    assert simple_graph().memory_bytes() > 0
