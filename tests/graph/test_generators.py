"""Unit tests for :mod:`repro.graph.generators`."""

import numpy as np
import pytest

from repro.graph.generators import (
    copying_model,
    erdos_renyi,
    grid_network,
    preferential_attachment,
    random_dag,
    rmat,
)


class TestRMAT:
    def test_size(self):
        g = rmat(8, 4, seed=0)
        assert g.num_vertices == 256
        # duplicates/self-loops removed, so fewer than 4*256 edges
        assert 0 < g.num_edges <= 4 * 256

    def test_deterministic(self):
        a, b = rmat(7, 4, seed=3), rmat(7, 4, seed=3)
        assert a.structurally_equal(b)

    def test_different_seeds_differ(self):
        a, b = rmat(7, 4, seed=3), rmat(7, 4, seed=4)
        assert not a.structurally_equal(b)

    def test_degree_skew(self):
        g = rmat(10, 8, seed=1)
        degs = np.sort(g.out_degrees())[::-1]
        # scale-free-ish: the top 10% of vertices hold a large edge share
        top = degs[: len(degs) // 10].sum()
        assert top > 0.3 * degs.sum()

    def test_bad_quadrants(self):
        with pytest.raises(ValueError):
            rmat(5, 2, a=0.5, b=0.5, c=0.5)

    def test_unit_weights(self):
        g = rmat(6, 2, weight_scheme="unit", seed=0)
        assert np.all(g.weights == 1.0)


class TestPreferentialAttachment:
    def test_size(self):
        g = preferential_attachment(300, 5, seed=0)
        assert g.num_vertices == 300
        assert g.num_edges > 300

    def test_deterministic(self):
        assert preferential_attachment(100, 4, seed=7).structurally_equal(
            preferential_attachment(100, 4, seed=7)
        )

    def test_in_degree_skew(self):
        g = preferential_attachment(500, 6, seed=1)
        in_degs = np.bincount(g.indices, minlength=500)
        assert in_degs.max() > 5 * max(in_degs.mean(), 1)

    def test_too_small(self):
        with pytest.raises(ValueError):
            preferential_attachment(1, 2)


class TestCopyingModel:
    def test_size(self):
        g = copying_model(300, 6, seed=0)
        assert g.num_vertices == 300
        assert g.num_edges > 0

    def test_edges_point_backwards(self):
        g = copying_model(200, 5, seed=2)
        src = g.edge_sources()
        assert np.all(g.indices < np.maximum(src, 1) + 200)  # sanity
        assert np.all(g.indices != src)  # no self loops

    def test_bad_copy_prob(self):
        with pytest.raises(ValueError):
            copying_model(10, 2, copy_prob=1.5)

    def test_deterministic(self):
        assert copying_model(150, 4, seed=9).structurally_equal(
            copying_model(150, 4, seed=9)
        )


class TestGrid:
    def test_vertex_count(self):
        g = grid_network(4, 5, seed=0)
        assert g.num_vertices == 20

    def test_bidirectional_by_default(self):
        g = grid_network(3, 3, seed=0)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_unidirectional(self):
        g = grid_network(3, 3, bidirectional=False, seed=0)
        assert g.has_edge(0, 1) and not g.has_edge(1, 0)

    def test_grid_connectivity(self):
        from repro.sssp.dijkstra import dijkstra

        g = grid_network(6, 6, seed=1)
        res = dijkstra(g, 0)
        assert res.num_reached() == 36

    def test_diagonals_added(self):
        no_diag = grid_network(10, 10, seed=5)
        diag = grid_network(10, 10, diagonal_prob=1.0, seed=5)
        assert diag.num_edges > no_diag.num_edges

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            grid_network(0, 3)


class TestRandomDag:
    def test_acyclic(self):
        import networkx as nx

        from repro.graph.build import to_networkx

        g = random_dag(60, 3.0, seed=0)
        assert nx.is_directed_acyclic_graph(to_networkx(g))

    def test_size(self):
        g = random_dag(50, 2.0, seed=1)
        assert g.num_vertices == 50


class TestErdosRenyi:
    def test_average_degree(self):
        g = erdos_renyi(500, 6.0, seed=0)
        # dedup/self-loop removal shaves a little off
        assert 4.0 < g.num_edges / 500 <= 6.0
