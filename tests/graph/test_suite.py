"""Unit tests for the benchmark graph suite."""

import numpy as np
import pytest

from repro.graph.suite import SCALES, SUITE_NAMES, random_st_pairs, suite_graph
from repro.sssp.dijkstra import dijkstra


class TestSuiteGraphs:
    def test_all_names_build_at_tiny(self):
        for name in SUITE_NAMES:
            g = suite_graph(name, "tiny")
            assert g.num_vertices > 0
            assert g.num_edges > 0

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            suite_graph("NOPE")

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            suite_graph("R21", "galactic")

    def test_paired_variants_share_structure(self):
        for a, b in (("R21", "R21U"), ("LJ", "LJU"), ("WL", "WLU")):
            ga, gb = suite_graph(a, "tiny"), suite_graph(b, "tiny")
            assert np.array_equal(ga.indptr, gb.indptr)
            assert np.array_equal(ga.indices, gb.indices)

    def test_unit_variants_have_unit_weights(self):
        for name in ("R21U", "LJU", "WLU"):
            assert np.all(suite_graph(name, "tiny").weights == 1.0)

    def test_weighted_variants_not_unit(self):
        assert not np.all(suite_graph("R21", "tiny").weights == 1.0)

    def test_gw_gt_are_bigger(self):
        # the paper's two billion-edge graphs stay the suite's largest
        lj = suite_graph("LJ", "tiny")
        gt = suite_graph("GT", "tiny")
        assert gt.num_vertices > lj.num_vertices

    def test_caching(self):
        assert suite_graph("LJ", "tiny") is suite_graph("LJ", "tiny")

    def test_scales_grow(self):
        tiny = suite_graph("R21", "tiny")
        small = suite_graph("R21", "small")
        assert small.num_vertices > tiny.num_vertices

    def test_scales_constant(self):
        assert SCALES == ("tiny", "small", "medium")
        assert len(SUITE_NAMES) == 8


class TestPairs:
    def test_pairs_reachable(self):
        g = suite_graph("LJ", "tiny")
        for s, t in random_st_pairs(g, 4, seed=1):
            res = dijkstra(g, s, target=t)
            assert res.reached(t)
            assert s != t

    def test_pairs_deterministic(self):
        g = suite_graph("LJ", "tiny")
        assert random_st_pairs(g, 3, seed=5) == random_st_pairs(g, 3, seed=5)

    def test_pairs_not_adjacent(self):
        g = suite_graph("WL", "tiny")
        for s, t in random_st_pairs(g, 4, seed=2):
            assert not g.has_edge(s, t)

    def test_too_small_graph(self):
        from repro.graph.build import from_edge_list

        g = from_edge_list(1, [])
        with pytest.raises(ValueError):
            random_st_pairs(g, 1)


class TestDiskCache:
    def test_round_trip_via_cache_dir(self, tmp_path, monkeypatch):
        fresh = suite_graph("R21", "tiny")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        suite_graph.cache_clear()
        try:
            first = suite_graph("R21", "tiny")  # generates + writes
            assert list(tmp_path.glob("suite-R21-tiny*.npz"))
            suite_graph.cache_clear()
            second = suite_graph("R21", "tiny")  # loads from disk
            assert second.structurally_equal(first)
            assert first.structurally_equal(fresh)
        finally:
            suite_graph.cache_clear()
