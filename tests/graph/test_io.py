"""Unit tests for :mod:`repro.graph.io`."""

import io

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.generators import erdos_renyi
from repro.graph.io import (
    load_npz,
    read_dimacs,
    read_edge_list,
    save_npz,
    write_dimacs,
    write_edge_list,
)


class TestEdgeList:
    def test_round_trip_file(self, tmp_path):
        g = erdos_renyi(30, 3.0, seed=0)
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        back = read_edge_list(path, num_vertices=30)
        assert back.structurally_equal(g)

    def test_round_trip_stream(self):
        g = erdos_renyi(20, 2.0, seed=1)
        buf = io.StringIO()
        write_edge_list(g, buf)
        buf.seek(0)
        back = read_edge_list(buf, num_vertices=20)
        assert back.structurally_equal(g)

    def test_comments_and_blank_lines_skipped(self):
        text = "# a comment\n\n0 1 2.5\n1 2\n"
        g = read_edge_list(io.StringIO(text))
        assert g.num_edges == 2
        assert g.edge_weight(0, 1) == 2.5
        assert g.edge_weight(1, 2) == 1.0  # default

    def test_bad_line(self):
        with pytest.raises(GraphFormatError):
            read_edge_list(io.StringIO("0 1 2 3 4\n"))

    def test_empty_input(self):
        g = read_edge_list(io.StringIO(""), num_vertices=5)
        assert g.num_vertices == 5
        assert g.num_edges == 0

    def test_num_vertices_inferred(self):
        g = read_edge_list(io.StringIO("0 9 1.0\n"))
        assert g.num_vertices == 10


class TestDimacs:
    def test_round_trip(self, tmp_path):
        g = erdos_renyi(25, 3.0, seed=2)
        path = tmp_path / "g.gr"
        write_dimacs(g, path, comment="test graph")
        back = read_dimacs(path)
        assert back.structurally_equal(g)

    def test_one_based_ids(self):
        g = read_dimacs(io.StringIO("p sp 3 1\na 1 3 2.0\n"))
        assert g.has_edge(0, 2)

    def test_missing_problem_line(self):
        with pytest.raises(GraphFormatError):
            read_dimacs(io.StringIO("a 1 2 1.0\n"))

    def test_arc_before_problem_line(self):
        with pytest.raises(GraphFormatError):
            read_dimacs(io.StringIO("a 1 2 1.0\np sp 3 1\n"))

    def test_unknown_record(self):
        with pytest.raises(GraphFormatError):
            read_dimacs(io.StringIO("p sp 2 0\nx nonsense\n"))

    def test_comments_skipped(self):
        g = read_dimacs(io.StringIO("c hello\np sp 2 1\na 1 2 1.0\n"))
        assert g.num_edges == 1


class TestNpz:
    def test_round_trip(self, tmp_path):
        g = erdos_renyi(40, 4.0, seed=3)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        back = load_npz(path)
        assert np.array_equal(back.indptr, g.indptr)
        assert np.array_equal(back.indices, g.indices)
        assert np.array_equal(back.weights, g.weights)

    def test_missing_keys(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, nothing=np.zeros(3))
        with pytest.raises(GraphFormatError):
            load_npz(path)
