"""CSRGraph._validate: explicit NaN-weight and indptr-regression diagnoses."""

import numpy as np
import pytest

from repro.errors import GraphFormatError, InvalidWeightError
from repro.graph.csr import CSRGraph


def test_nan_weight_rejected_with_edge_index():
    with pytest.raises(InvalidWeightError, match=r"edge 1 has NaN weight"):
        CSRGraph(
            np.array([0, 2, 3, 3]),
            np.array([1, 2, 0]),
            np.array([1.0, float("nan"), 2.0]),
        )


def test_nan_weight_message_distinct_from_nonpositive():
    with pytest.raises(InvalidWeightError) as exc:
        CSRGraph(np.array([0, 1]), np.array([0]), np.array([-1.0]))
    assert "NaN" not in str(exc.value)
    assert "strictly positive" in str(exc.value)


def test_negative_indptr_delta_rejected_with_vertex():
    with pytest.raises(GraphFormatError, match=r"drops from 2 to 1 at vertex 1"):
        CSRGraph(
            np.array([0, 2, 1, 3]),
            np.array([1, 2, 0]),
            np.array([1.0, 1.0, 1.0]),
        )


def test_infinite_weight_still_rejected():
    with pytest.raises(InvalidWeightError):
        CSRGraph(np.array([0, 1]), np.array([0]), np.array([float("inf")]))


def test_valid_graph_unaffected():
    g = CSRGraph(np.array([0, 1, 2]), np.array([1, 0]), np.array([0.5, 2.0]))
    assert g.num_vertices == 2 and g.num_edges == 2
