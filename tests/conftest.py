"""Shared fixtures and graph builders for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.build import from_edge_list
from repro.graph.csr import CSRGraph
from repro.graph.generators import erdos_renyi, grid_network
from repro.sssp.dijkstra import dijkstra


@pytest.fixture
def fan_graph() -> CSRGraph:
    """Hand-checkable KSP example: four disjoint s→t corridors.

    Vertices: s=0, a=1, b=2, c=3, t=4, d=5.  Simple paths and distances:
    s-a-t = 2, s-b-t = 4, s-c-t = 6, s-d-t = 20.  With K = 3 the upper
    bound is 6, so vertex d (spSum = 20) and the weight-10 edges must be
    pruned — the canonical Algorithm 2 walk-through used by the pruning
    tests.
    """
    edges = [
        (0, 1, 1.0), (1, 4, 1.0),
        (0, 2, 2.0), (2, 4, 2.0),
        (0, 3, 3.0), (3, 4, 3.0),
        (0, 5, 10.0), (5, 4, 10.0),
    ]
    return from_edge_list(6, edges)


@pytest.fixture
def loop_trap_graph() -> CSRGraph:
    """Reproduces Figure 3(e): a vertex whose combined path is invalid.

    s=0, f=1, j=2, i=3, t=4.  The forward tree reaches i via s→f→j→i and
    the reverse tree sends i back through i→j→t, so the combined path
    visits j twice.
    """
    edges = [
        (0, 1, 1.0),  # s→f
        (1, 2, 1.0),  # f→j
        (2, 3, 1.0),  # j→i
        (3, 2, 1.0),  # i→j
        (2, 4, 5.0),  # j→t
    ]
    return from_edge_list(5, edges)


@pytest.fixture
def diamond_graph() -> CSRGraph:
    """Two parallel two-hop routes plus a direct edge: 3 simple s→t paths."""
    edges = [
        (0, 1, 1.0), (1, 3, 1.0),   # s-a-t = 2
        (0, 2, 1.5), (2, 3, 1.5),   # s-b-t = 3
        (0, 3, 4.0),                 # s-t   = 4
    ]
    return from_edge_list(4, edges)


@pytest.fixture
def small_grid() -> CSRGraph:
    """An 8×8 random-weight grid: many ties-free simple paths."""
    return grid_network(8, 8, seed=3)


@pytest.fixture
def medium_er() -> CSRGraph:
    """A 150-vertex random digraph for cross-algorithm tests."""
    return erdos_renyi(150, 4.0, seed=11)


def random_reachable_pair(graph: CSRGraph, seed: int = 0) -> tuple[int, int]:
    """A deterministic (source, reachable target ≥2 hops) pair."""
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    for _ in range(100):
        s = int(rng.integers(0, n))
        res = dijkstra(graph, s)
        reach = np.flatnonzero(np.isfinite(res.dist))
        neighbors, _ = graph.neighbors(s)
        far = np.setdiff1d(reach, np.append(neighbors, s))
        if far.size:
            return s, int(far[rng.integers(0, far.size)])
    raise RuntimeError("no reachable pair found")


def nx_k_shortest_distances(graph: CSRGraph, s: int, t: int, k: int) -> list[float]:
    """Reference K shortest simple path distances via networkx."""
    import itertools

    import networkx as nx

    from repro.graph.build import to_networkx

    nxg = to_networkx(graph)
    out = []
    try:
        for p in itertools.islice(
            nx.shortest_simple_paths(nxg, s, t, weight="weight"), k
        ):
            out.append(
                sum(nxg[a][b]["weight"] for a, b in zip(p[:-1], p[1:]))
            )
    except nx.NetworkXNoPath:
        pass
    return out
