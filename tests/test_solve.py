"""repro.solve — the front-door API — and the AlgorithmSpec registry."""

from __future__ import annotations

import pytest

import repro
from repro.ksp.registry import ALGORITHMS, AlgorithmSpec
from tests.conftest import random_reachable_pair


def test_algorithms_lists_registry():
    names = repro.algorithms()
    assert names == tuple(ALGORITHMS)
    assert "PeeK" in names and "Yen" in names and "SB*" in names


@pytest.mark.parametrize("name", list(ALGORITHMS))
def test_solve_matches_direct_instantiation(medium_er, name):
    """solve(algorithm=name) == make_algorithm(name, ...).run(k), per spec."""
    s, t = random_reachable_pair(medium_er, seed=5)
    k = 6
    via_solve = repro.solve(medium_er, s, t, k, algorithm=name)
    direct = repro.make_algorithm(name, medium_er, s, t).run(k)
    assert via_solve.distances == pytest.approx(direct.distances)
    assert [p.vertices for p in via_solve.paths] == [
        p.vertices for p in direct.paths
    ]


def test_solve_default_is_peek(diamond_graph):
    result = repro.solve(diamond_graph, 0, 3, k=3)
    assert isinstance(result, repro.PeeKResult)
    assert result.distances == pytest.approx([2.0, 3.0, 4.0])


def test_solve_unknown_algorithm(diamond_graph):
    with pytest.raises(KeyError, match="unknown algorithm"):
        repro.solve(diamond_graph, 0, 3, k=2, algorithm="Dijkstra")


def test_solve_rejects_unknown_kwarg(diamond_graph):
    with pytest.raises(TypeError, match="valid keyword"):
        repro.solve(diamond_graph, 0, 3, k=2, algorithm="Yen", alpha=0.5)


def test_solve_rejects_unsupported_capability_kwarg(diamond_graph):
    # PeeK is not deviation-based at top level: no `lawler` knob.
    with pytest.raises(TypeError, match="lawler"):
        repro.solve(diamond_graph, 0, 3, k=2, algorithm="PeeK", lawler=True)


def test_solve_forwards_algorithm_options(diamond_graph):
    result = repro.solve(
        diamond_graph, 0, 3, k=3, algorithm="PeeK",
        kernel="dijkstra", compaction_force="status-array",
    )
    assert result.compaction.strategy == "status-array"
    assert result.distances == pytest.approx([2.0, 3.0, 4.0])


@pytest.mark.parametrize(
    "alias, name",
    [
        (repro.yen_ksp, "Yen"),
        (repro.nc_ksp, "NC"),
        (repro.optyen_ksp, "OptYen"),
        (repro.sb_ksp, "SB"),
        (repro.sb_star_ksp, "SB*"),
        (repro.pnc_ksp, "PNC"),
        (repro.peek_ksp, "PeeK"),
    ],
)
def test_free_function_aliases_delegate_to_solve(diamond_graph, alias, name):
    got = alias(diamond_graph, 0, 3, 3)
    want = repro.solve(diamond_graph, 0, 3, 3, algorithm=name)
    assert got.distances == pytest.approx(want.distances)


def test_psb_alias_variants(diamond_graph):
    from repro.ksp import psb_ksp

    for variant, name in (("v1", "PSB"), ("v2", "PSB-v2"), ("v3", "PSB-v3")):
        got = psb_ksp(diamond_graph, 0, 3, 3, variant=variant)
        want = repro.solve(diamond_graph, 0, 3, 3, algorithm=name)
        assert got.distances == pytest.approx(want.distances)


# ---------------------------------------------------------------------------
# AlgorithmSpec semantics
# ---------------------------------------------------------------------------
def test_registry_entries_are_specs():
    for name, spec in ALGORITHMS.items():
        assert isinstance(spec, AlgorithmSpec)
        assert spec.name == name
        assert spec.summary


def test_spec_capability_flags():
    peek = repro.algorithm_spec("PeeK")
    assert not peek.supports_lawler
    assert not peek.is_deviation_based
    assert "alpha" in peek.valid_kwargs
    assert "lawler" not in peek.valid_kwargs

    yen = repro.algorithm_spec("Yen")
    assert yen.supports_deadline and yen.supports_workspace and yen.supports_lawler
    assert yen.valid_kwargs == frozenset({"deadline", "use_workspace", "lawler"})

    psb3 = repro.algorithm_spec("PSB-v3")
    assert {"threshold", "memory_budget_bytes"} <= psb3.valid_kwargs


def test_spec_validate_kwargs_names_offender_and_options():
    spec = repro.algorithm_spec("SB")
    with pytest.raises(TypeError) as exc:
        spec.validate_kwargs({"bogus": 1})
    assert "bogus" in str(exc.value)
    assert "deadline" in str(exc.value)
    spec.validate_kwargs({"deadline": None, "lawler": True})  # no raise


def test_spec_is_callable_like_a_factory(diamond_graph):
    """Legacy call sites do ALGORITHMS[name](graph, s, t, ...)."""
    algo = ALGORITHMS["Yen"](diamond_graph, 0, 3)
    assert algo.run(2).distances == pytest.approx([2.0, 3.0])


def test_algorithm_spec_unknown_name():
    with pytest.raises(KeyError, match="unknown algorithm"):
        repro.algorithm_spec("nope")


def test_deviation_based_flag_matches_class_hierarchy():
    from repro.ksp.base import DeviationKSP
    from repro.graph.build import from_edge_list

    g = from_edge_list(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 3.0)])
    for name, spec in ALGORITHMS.items():
        algo = spec(g, 0, 2)
        assert isinstance(algo, DeviationKSP) == spec.is_deviation_based, name
