"""Workspace-reuse Dijkstra must be indistinguishable from fresh allocation.

The epoch-stamped workspace (:mod:`repro.sssp.workspace`) promises bitwise-
identical labels and counters across arbitrarily many back-to-back queries on
one shared workspace — including banned vertices in every accepted input
form, banned edges, cutoffs, and early target exits.  These tests are the
contract.
"""

import numpy as np
import pytest

from repro.errors import VertexError
from repro.graph.build import from_edge_list
from repro.graph.generators import erdos_renyi, grid_network
from repro.paths import INF
from repro.sssp.dijkstra import dijkstra
from repro.sssp.lazy_dijkstra import LazyDijkstra
from repro.sssp.workspace import SSSPWorkspace


def _assert_same(fresh, ws_res, n):
    """Fresh SSSPResult and WorkspaceResult agree on every observable."""
    for v in range(n):
        assert ws_res.dist_of(v) == fresh.dist[v]
        assert ws_res.parent_of(v) == fresh.parent[v]
        assert ws_res.reached(v) == fresh.reached(v)
    assert ws_res.num_reached() == fresh.num_reached()
    assert ws_res.stats.vertices_settled == fresh.stats.vertices_settled
    assert ws_res.stats.edges_relaxed == fresh.stats.edges_relaxed
    assert ws_res.stats.heap_pushes == fresh.stats.heap_pushes


class TestBackToBackReuse:
    """The headline property: many mixed queries on ONE workspace == fresh."""

    def test_many_queries_match_fresh(self):
        g = erdos_renyi(150, 5.0, seed=3)
        n = g.num_vertices
        ws = SSSPWorkspace(g)
        rng = np.random.default_rng(11)
        for q in range(60):
            source = int(rng.integers(n))
            kwargs = {}
            kind = q % 5
            if kind == 1:  # banned vertex ids (list form)
                kwargs["banned_vertices"] = [
                    int(v) for v in rng.integers(n, size=6) if int(v) != source
                ]
            elif kind == 2:  # bool-mask form + banned edges
                mask = np.zeros(n, dtype=bool)
                mask[rng.integers(n, size=8)] = True
                mask[source] = False
                kwargs["banned_vertices"] = mask
                kwargs["banned_edges"] = {
                    (source, int(v)) for v in rng.integers(n, size=3)
                }
            elif kind == 3:  # early target exit
                kwargs["target"] = int(rng.integers(n))
            elif kind == 4:  # cutoff + frozenset bans
                kwargs["cutoff"] = float(rng.uniform(0.5, 3.0))
                kwargs["banned_vertices"] = frozenset(
                    int(v) for v in rng.integers(n, size=4) if int(v) != source
                )
            fresh = dijkstra(g, source, **kwargs)
            got = dijkstra(g, source, workspace=ws, **kwargs)
            _assert_same(fresh, got, n)

    def test_shrinking_and_jumping_ban_sets(self):
        """apply_bans handles arbitrary jumps, not just monotone growth."""
        g = grid_network(8, 8, seed=1)
        ws = SSSPWorkspace(g)
        ban_seq = [[1, 2, 3], [1, 2, 3, 4], [9, 10], [], [9, 10, 1], [1]]
        for bans in ban_seq:
            fresh = dijkstra(g, 0, banned_vertices=bans)
            got = dijkstra(g, 0, workspace=ws, banned_vertices=bans)
            _assert_same(fresh, got, g.num_vertices)

    def test_reconstruct_matches_fresh(self):
        g = erdos_renyi(80, 4.0, seed=7)
        ws = SSSPWorkspace(g)
        fresh = dijkstra(g, 0)
        got = dijkstra(g, 0, workspace=ws)
        for v in range(g.num_vertices):
            assert got.reconstruct(v) == fresh.reconstruct(v)

    def test_materialized_arrays_equal_fresh(self):
        g = erdos_renyi(60, 4.0, seed=9)
        ws = SSSPWorkspace(g)
        fresh = dijkstra(g, 5, banned_vertices=[1, 2])
        got = dijkstra(g, 5, workspace=ws, banned_vertices=[1, 2])
        assert np.array_equal(got.dist, fresh.dist)
        assert np.array_equal(got.parent, fresh.parent)


class TestBanInputForms:
    """Satellite: list-like ids and bool masks take different (correct) paths."""

    @pytest.fixture()
    def graph(self):
        return from_edge_list(
            5,
            [(0, 1, 1.0), (0, 2, 4.0), (1, 2, 1.0), (2, 3, 1.0), (1, 3, 5.0), (3, 4, 1.0)],
        )

    @pytest.mark.parametrize(
        "form", ["list", "tuple", "set", "frozenset", "ndarray_ids", "bool_mask"]
    )
    def test_all_forms_agree(self, graph, form):
        ids = [2]
        if form == "list":
            bans = ids
        elif form == "tuple":
            bans = tuple(ids)
        elif form == "set":
            bans = set(ids)
        elif form == "frozenset":
            bans = frozenset(ids)
        elif form == "ndarray_ids":
            bans = np.asarray(ids, dtype=np.int64)
        else:
            bans = np.zeros(graph.num_vertices, dtype=bool)
            bans[ids] = True
        ws = SSSPWorkspace(graph)
        fresh = dijkstra(graph, 0, banned_vertices=bans)
        got = dijkstra(graph, 0, workspace=ws, banned_vertices=bans)
        _assert_same(fresh, got, graph.num_vertices)
        assert got.dist_of(3) == pytest.approx(6.0)  # forced around vertex 2

    def test_incremental_mask_state(self, graph):
        ws = SSSPWorkspace(graph)
        dijkstra(graph, 0, workspace=ws, banned_vertices=[1, 3])
        assert ws.is_banned(1) and ws.is_banned(3) and not ws.is_banned(2)
        dijkstra(graph, 0, workspace=ws, banned_vertices=[3, 4])
        assert not ws.is_banned(1) and ws.is_banned(4)
        dijkstra(graph, 0, workspace=ws)  # no bans clears the mask
        assert not any(ws.ban)

    def test_bool_mask_does_not_pollute_incremental_state(self, graph):
        """A caller mask is honoured directly, leaving the delta mask alone."""
        ws = SSSPWorkspace(graph)
        dijkstra(graph, 0, workspace=ws, banned_vertices=[2])
        mask = np.zeros(graph.num_vertices, dtype=bool)
        mask[1] = True
        got = dijkstra(graph, 0, workspace=ws, banned_vertices=mask)
        assert got.dist_of(2) == pytest.approx(4.0)  # via direct 0->2 edge
        # and the incremental set is still exactly {2}
        fresh = dijkstra(graph, 0, banned_vertices=[2])
        got2 = dijkstra(graph, 0, workspace=ws, banned_vertices=[2])
        _assert_same(fresh, got2, graph.num_vertices)


class TestGuards:
    def test_banned_source_raises(self, diamond_graph):
        ws = SSSPWorkspace(diamond_graph)
        with pytest.raises(VertexError):
            dijkstra(diamond_graph, 0, workspace=ws, banned_vertices=[0])
        mask = np.zeros(diamond_graph.num_vertices, dtype=bool)
        mask[0] = True
        with pytest.raises(VertexError):
            dijkstra(diamond_graph, 0, workspace=ws, banned_vertices=mask)

    def test_graph_mismatch_raises(self, diamond_graph, fan_graph):
        ws = SSSPWorkspace(diamond_graph)
        with pytest.raises(ValueError):
            dijkstra(fan_graph, 0, workspace=ws)

    def test_stale_result_raises(self, diamond_graph):
        ws = SSSPWorkspace(diamond_graph)
        first = dijkstra(diamond_graph, 0, workspace=ws)
        dijkstra(diamond_graph, 1, workspace=ws)  # new epoch
        with pytest.raises(RuntimeError):
            first.dist_of(3)
        with pytest.raises(RuntimeError):
            first.reconstruct(3)

    def test_materialize_outlives_epoch(self, diamond_graph):
        ws = SSSPWorkspace(diamond_graph)
        first = dijkstra(diamond_graph, 0, workspace=ws)
        before = first.dist.copy()  # .dist materialises
        dijkstra(diamond_graph, 1, workspace=ws)
        assert np.array_equal(first.dist, before)  # snapshot survives
        assert first.dist_of(3) == before[3]


class TestLazyDijkstraTenancy:
    def test_workspace_tenant_matches_fresh(self):
        g = erdos_renyi(100, 4.0, seed=5)
        ws = SSSPWorkspace(g)
        for source in (0, 17, 42):
            fresh = LazyDijkstra(g, source).run_to_completion()
            tenant = LazyDijkstra(g, source, workspace=ws).run_to_completion()
            assert np.array_equal(tenant.dist, fresh.dist)
            assert np.array_equal(tenant.parent, fresh.parent)

    def test_sparse_reset_between_tenants(self):
        g = from_edge_list(4, [(0, 1, 1.0), (1, 2, 1.0)])
        ws = SSSPWorkspace(g)
        first = LazyDijkstra(g, 0, workspace=ws)
        first.run_to_completion()
        second = LazyDijkstra(g, 3, workspace=ws)  # isolated source
        assert second.dist[3] == 0.0
        # first tenant's labels were wiped, not inherited
        assert second.dist[0] == INF and second.dist[1] == INF

    def test_snapshot_owns_its_arrays(self):
        g = erdos_renyi(50, 4.0, seed=2)
        ws = SSSPWorkspace(g)
        tenant = LazyDijkstra(g, 0, workspace=ws)
        tenant.distance_to(10)
        snap = tenant.snapshot()
        dist_before = snap.dist.copy()
        LazyDijkstra(g, 1, workspace=ws).run_to_completion()  # evicts tenant
        assert np.array_equal(snap.dist, dist_before)
        snap.run_to_completion()  # snapshot still resumable
        fresh = LazyDijkstra(g, 0).run_to_completion()
        assert np.array_equal(snap.dist, fresh.dist)

    def test_graph_mismatch_raises(self, diamond_graph, fan_graph):
        ws = SSSPWorkspace(diamond_graph)
        with pytest.raises(ValueError):
            LazyDijkstra(fan_graph, 0, workspace=ws)


class TestWorkspaceHousekeeping:
    def test_epoch_monotone(self, diamond_graph):
        ws = SSSPWorkspace(diamond_graph)
        e1 = ws.next_epoch()
        e2 = ws.next_epoch()
        assert e2 == e1 + 1

    def test_memory_bytes_grows_with_adjacency_cache(self, diamond_graph):
        ws = SSSPWorkspace(diamond_graph)
        before = ws.memory_bytes()
        ws.adjacency_lists()
        assert ws.memory_bytes() > before

    def test_ban_view_is_zero_copy(self, diamond_graph):
        ws = SSSPWorkspace(diamond_graph)
        ws.apply_bans([2])
        assert bool(ws.ban[2]) and not bool(ws.ban[1])
        ws.apply_bans([])
        assert not ws.ban.any()
