"""Backend equivalence suite: scalar / vectorized / mp Δ-stepping.

The vectorized kernel's contract is **bitwise** agreement with the scalar
reference engine — identical ``dist`` AND identical ``parent`` (same
tie-breaks), not merely ``allclose`` — because downstream pruning builds
paths from the parent trees and the reproducibility harness hashes them.
The mp backend must additionally be invariant to the worker count.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cancel import fault_scope
from repro.errors import KSPTimeout
from repro.graph.build import from_edge_array, from_edge_list
from repro.graph.generators import erdos_renyi, grid_network
from repro.sssp.delta_stepping import BACKENDS, delta_stepping
from repro.sssp.workspace import SSSPWorkspace


@st.composite
def graphs(draw, max_n=24, max_m=80):
    """An arbitrary positively-weighted digraph plus a source vertex."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    w = draw(
        st.lists(
            st.floats(
                min_value=0.001,
                max_value=100.0,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=m,
            max_size=m,
        )
    )
    g = from_edge_array(
        n,
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        np.asarray(w, dtype=np.float64),
    )
    source = draw(st.integers(0, n - 1))
    return g, source


def assert_bitwise(a, b):
    assert np.array_equal(a.dist, b.dist, equal_nan=True)
    assert np.array_equal(a.parent, b.parent)


class TestScalarVectorizedBitwise:
    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_random_graphs(self, case):
        g, s = case
        assert_bitwise(
            delta_stepping(g, s, backend="scalar"),
            delta_stepping(g, s, backend="vectorized"),
        )

    @given(graphs(), st.floats(min_value=0.01, max_value=200.0))
    @settings(max_examples=40, deadline=None)
    def test_random_graphs_any_delta(self, case, delta):
        g, s = case
        assert_bitwise(
            delta_stepping(g, s, delta=delta, backend="scalar"),
            delta_stepping(g, s, delta=delta, backend="vectorized"),
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_er_seeds(self, seed):
        g = erdos_renyi(120, 5.0, seed=seed)
        assert_bitwise(
            delta_stepping(g, 0, backend="scalar"),
            delta_stepping(g, 0, backend="vectorized"),
        )

    def test_stats_match_too(self):
        """Same batch sequence ⇒ same phase log, not only the same answer."""
        g = erdos_renyi(100, 4.0, seed=11)
        a = delta_stepping(g, 0, backend="scalar")
        b = delta_stepping(g, 0, backend="vectorized")
        assert a.stats.phases == b.stats.phases
        assert a.stats.phase_work == b.stats.phase_work
        assert a.stats.edges_relaxed == b.stats.edges_relaxed
        assert a.stats.vertices_settled == b.stats.vertices_settled

    @given(graphs())
    @settings(max_examples=25, deadline=None)
    def test_vertex_mask(self, case):
        g, s = case
        rng = np.random.default_rng(g.num_vertices)
        mask = rng.random(g.num_vertices) > 0.3
        mask[s] = True
        assert_bitwise(
            delta_stepping(g, s, vertex_mask=mask, backend="scalar"),
            delta_stepping(g, s, vertex_mask=mask, backend="vectorized"),
        )


class TestMPBitwise:
    """A few fixed-graph mp cases; the full matrix lives in
    tests/parallel/test_mp_backend.py."""

    @pytest.mark.parametrize("seed", [0, 3])
    def test_er(self, seed):
        g = erdos_renyi(150, 5.0, seed=seed)
        assert_bitwise(
            delta_stepping(g, 0, backend="vectorized"),
            delta_stepping(g, 0, backend="mp", num_workers=2),
        )

    def test_grid(self):
        g = grid_network(10, 10, seed=1)
        assert_bitwise(
            delta_stepping(g, 0, backend="scalar"),
            delta_stepping(g, 0, backend="mp", num_workers=2),
        )


class TestWorkspaceReuse:
    def test_reuse_is_bitwise_identical(self):
        g = erdos_renyi(150, 5.0, seed=2)
        ws = SSSPWorkspace(g)
        fresh = [delta_stepping(g, s).dist.copy() for s in (0, 7, 7, 31)]
        # workspace runs hand back the workspace's own buffers — copy before
        # the next run overwrites them
        reused = [
            delta_stepping(g, s, workspace=ws).dist.copy()
            for s in (0, 7, 7, 31)
        ]
        for a, b in zip(fresh, reused):
            assert np.array_equal(a, b, equal_nan=True)

    def test_workspace_scalar_backend(self):
        g = erdos_renyi(80, 4.0, seed=5)
        ws = SSSPWorkspace(g)
        for s in (0, 9, 0):
            assert_bitwise(
                delta_stepping(g, s, workspace=ws, backend="scalar"),
                delta_stepping(g, s, backend="vectorized"),
            )

    def test_foreign_workspace_rejected(self):
        g1 = erdos_renyi(40, 3.0, seed=0)
        g2 = erdos_renyi(40, 3.0, seed=1)
        ws = SSSPWorkspace(g1)
        with pytest.raises(ValueError, match="different graph"):
            delta_stepping(g2, 0, workspace=ws)

    def test_mp_backend_rejects_workspace(self):
        g = erdos_renyi(40, 3.0, seed=0)
        ws = SSSPWorkspace(g)
        with pytest.raises(ValueError, match="workspace"):
            delta_stepping(g, 0, backend="mp", workspace=ws)


class TestCancellationLeavesWorkspaceReusable:
    def _interrupt_at(self, nth):
        """A fault hook that raises on the nth ``sssp.delta`` checkpoint."""
        state = {"hits": 0}

        def hook(stage):
            if stage == "sssp.delta":
                state["hits"] += 1
                if state["hits"] == nth:
                    raise KSPTimeout("injected mid-run cancellation")

        return hook

    @pytest.mark.parametrize("backend", ["vectorized", "scalar"])
    @pytest.mark.parametrize("nth", [1, 2, 4])
    def test_mid_run_interrupt_then_clean_rerun(self, backend, nth):
        g = erdos_renyi(150, 5.0, seed=4)
        ws = SSSPWorkspace(g)
        clean = delta_stepping(g, 3, backend=backend)
        with fault_scope(self._interrupt_at(nth)):
            with pytest.raises(KSPTimeout):
                delta_stepping(g, 3, workspace=ws, backend=backend)
        # The interrupted run left dirty epochs behind; the next acquire
        # must sparse-reset them so the rerun is bitwise clean.
        again = delta_stepping(g, 3, workspace=ws, backend=backend)
        assert_bitwise(clean, again)

    def test_expired_deadline_then_clean_rerun(self):
        import time

        g = erdos_renyi(120, 4.0, seed=9)
        ws = SSSPWorkspace(g)
        clean = delta_stepping(g, 0)
        with pytest.raises(KSPTimeout):
            delta_stepping(
                g, 0, workspace=ws, deadline=time.perf_counter() - 1.0
            )
        assert_bitwise(clean, delta_stepping(g, 0, workspace=ws))


class TestValidation:
    def test_unknown_backend(self, diamond_graph):
        with pytest.raises(ValueError, match="backend"):
            delta_stepping(diamond_graph, 0, backend="simd")

    def test_backends_constant(self):
        assert BACKENDS == ("scalar", "vectorized", "mp")

    def test_single_vertex_all_backends(self):
        g = from_edge_list(1, [])
        for backend in ("scalar", "vectorized"):
            res = delta_stepping(g, 0, backend=backend)
            # parent[source] == source is the library-wide root convention
            assert res.dist[0] == 0.0 and res.parent[0] == 0
