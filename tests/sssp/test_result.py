"""Unit tests for the SSSP result/stat containers."""

import numpy as np

from repro.paths import INF
from repro.sssp.result import SSSPResult, SSSPStats


class TestStats:
    def test_total_work(self):
        st = SSSPStats(edges_relaxed=7, vertices_settled=3)
        assert st.total_work == 10

    def test_defaults(self):
        st = SSSPStats()
        assert st.total_work == 0
        assert st.phase_work == []

    def test_phase_work_independent_instances(self):
        a, b = SSSPStats(), SSSPStats()
        a.phase_work.append(1)
        assert b.phase_work == []


class TestResult:
    def test_reached(self):
        res = SSSPResult(
            source=0,
            dist=np.array([0.0, 1.0, INF]),
            parent=np.array([0, 0, -1]),
        )
        assert res.reached(1)
        assert not res.reached(2)
        assert res.num_reached() == 2
