"""Unit tests for the Bellman–Ford reference kernel."""

import numpy as np
import pytest

from repro.errors import VertexError
from repro.graph.build import from_edge_list
from repro.graph.generators import erdos_renyi
from repro.paths import INF
from repro.sssp.bellman_ford import bellman_ford
from repro.sssp.dijkstra import dijkstra


@pytest.mark.parametrize("seed", range(4))
def test_matches_dijkstra(seed):
    g = erdos_renyi(80, 3.0, seed=seed)
    bf = bellman_ford(g, 0).dist
    dj = dijkstra(g, 0).dist
    assert np.allclose(
        np.nan_to_num(bf, posinf=-1), np.nan_to_num(dj, posinf=-1)
    )


def test_early_exit_fewer_rounds_than_n(medium_er):
    res = bellman_ford(medium_er, 0)
    assert res.stats.phases < medium_er.num_vertices - 1


def test_unreachable(diamond_graph):
    g = from_edge_list(3, [(0, 1, 1.0)])
    res = bellman_ford(g, 0)
    assert res.dist[2] == INF


def test_bad_source(diamond_graph):
    with pytest.raises(VertexError):
        bellman_ford(diamond_graph, -1)


def test_parent_consistency(diamond_graph):
    res = bellman_ford(diamond_graph, 0)
    assert res.parent[0] == 0
    assert res.parent[3] == 1  # best route via vertex 1
