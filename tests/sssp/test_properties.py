"""Hypothesis property tests: all SSSP kernels agree on arbitrary graphs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.build import from_edge_array
from repro.sssp.bellman_ford import bellman_ford
from repro.sssp.delta_stepping import delta_stepping
from repro.sssp.dijkstra import dijkstra
from repro.sssp.lazy_dijkstra import LazyDijkstra


@st.composite
def graphs(draw, max_n=24, max_m=80):
    """An arbitrary positively-weighted digraph plus a source vertex."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    src = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    dst = draw(
        st.lists(st.integers(0, n - 1), min_size=m, max_size=m)
    )
    w = draw(
        st.lists(
            st.floats(
                min_value=0.001,
                max_value=100.0,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=m,
            max_size=m,
        )
    )
    g = from_edge_array(
        n,
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        np.asarray(w, dtype=np.float64),
    )
    source = draw(st.integers(0, n - 1))
    return g, source


def normalize(dist):
    return np.nan_to_num(dist, posinf=-1.0)


@given(graphs())
@settings(max_examples=60, deadline=None)
def test_delta_stepping_equals_dijkstra(case):
    g, s = case
    assert np.allclose(
        normalize(delta_stepping(g, s).dist), normalize(dijkstra(g, s).dist)
    )


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_bellman_ford_equals_dijkstra(case):
    g, s = case
    assert np.allclose(
        normalize(bellman_ford(g, s).dist), normalize(dijkstra(g, s).dist)
    )


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_lazy_dijkstra_completion_equals_dijkstra(case):
    g, s = case
    ld = LazyDijkstra(g, s)
    assert np.allclose(
        normalize(ld.run_to_completion().dist), normalize(dijkstra(g, s).dist)
    )


@given(graphs(), st.floats(min_value=0.01, max_value=200.0))
@settings(max_examples=40, deadline=None)
def test_delta_stepping_delta_invariance(case, delta):
    """Distances must not depend on the bucket width."""
    g, s = case
    a = delta_stepping(g, s, delta=delta).dist
    b = delta_stepping(g, s).dist
    assert np.allclose(normalize(a), normalize(b))


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_triangle_inequality_of_results(case):
    """dist[v] <= dist[u] + w(u, v) for every edge — the SSSP fixpoint."""
    g, s = case
    dist = dijkstra(g, s).dist
    src = g.edge_sources()
    for e in range(g.num_edges):
        u, v = int(src[e]), int(g.indices[e])
        if np.isfinite(dist[u]):
            assert dist[v] <= dist[u] + g.weights[e] + 1e-9


@given(graphs())
@settings(max_examples=30, deadline=None)
def test_reverse_graph_distance_symmetry(case):
    """dist_G(s→v) == dist_rev(v→s) for the transpose graph."""
    g, s = case
    fwd = dijkstra(g, s).dist
    rev = dijkstra(g.reverse(), s).dist
    # reverse-of-reverse sanity: re-reversing recovers forward distances
    fwd2 = dijkstra(g.reverse().reverse(), s).dist
    assert np.allclose(normalize(fwd), normalize(fwd2))
    # both are s-rooted but on different graphs; only the source matches
    assert fwd[s] == rev[s] == 0.0
