"""Unit tests for the Δ-stepping kernel."""

import numpy as np
import pytest

from repro.errors import VertexError
from repro.graph.build import from_edge_list
from repro.graph.generators import erdos_renyi, grid_network
from repro.paths import INF, reconstruct_path
from repro.sssp.delta_stepping import choose_delta, delta_stepping
from repro.sssp.dijkstra import dijkstra


def dist_equal(a, b) -> bool:
    return np.allclose(np.nan_to_num(a, posinf=-1.0), np.nan_to_num(b, posinf=-1.0))


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_dijkstra_random(self, seed):
        g = erdos_renyi(100, 4.0, seed=seed)
        assert dist_equal(delta_stepping(g, 0).dist, dijkstra(g, 0).dist)

    def test_matches_dijkstra_grid(self, small_grid):
        assert dist_equal(
            delta_stepping(small_grid, 0).dist, dijkstra(small_grid, 0).dist
        )

    @pytest.mark.parametrize("delta", [0.01, 0.1, 1.0, 100.0])
    def test_any_delta_is_correct(self, small_grid, delta):
        res = delta_stepping(small_grid, 0, delta=delta)
        assert dist_equal(res.dist, dijkstra(small_grid, 0).dist)

    def test_unit_weights(self):
        g = grid_network(6, 6, weight_scheme="unit", seed=0)
        assert dist_equal(delta_stepping(g, 0).dist, dijkstra(g, 0).dist)

    def test_parents_form_valid_tree(self, medium_er):
        res = delta_stepping(medium_er, 0)
        dij = dijkstra(medium_er, 0)
        for v in range(medium_er.num_vertices):
            if not np.isfinite(res.dist[v]):
                assert res.parent[v] == -1
                continue
            path = reconstruct_path(res.parent, 0, v)
            assert path is not None
            total = sum(
                medium_er.edge_weight(a, b) for a, b in zip(path[:-1], path[1:])
            )
            assert total == pytest.approx(dij.dist[v])


class TestEdgeCases:
    def test_bad_source(self, diamond_graph):
        with pytest.raises(VertexError):
            delta_stepping(diamond_graph, 17)

    def test_bad_delta(self, diamond_graph):
        with pytest.raises(ValueError):
            delta_stepping(diamond_graph, 0, delta=0.0)

    def test_isolated_source(self):
        g = from_edge_list(3, [(1, 2, 1.0)])
        res = delta_stepping(g, 0)
        assert res.dist[0] == 0.0
        assert res.dist[1] == INF

    def test_single_vertex(self):
        g = from_edge_list(1, [])
        res = delta_stepping(g, 0)
        assert res.dist[0] == 0.0

    def test_vertex_mask_blocks_route(self, diamond_graph):
        mask = np.ones(4, dtype=bool)
        mask[1] = False
        res = delta_stepping(diamond_graph, 0, vertex_mask=mask)
        assert res.dist[3] == pytest.approx(3.0)

    def test_masked_source_raises(self, diamond_graph):
        mask = np.ones(4, dtype=bool)
        mask[0] = False
        with pytest.raises(VertexError):
            delta_stepping(diamond_graph, 0, vertex_mask=mask)


class TestPhaseLog:
    def test_phase_work_recorded(self, medium_er):
        res = delta_stepping(medium_er, 0)
        assert res.stats.phases == len(res.stats.phase_work)
        assert res.stats.phases > 1
        assert sum(res.stats.phase_work) == res.stats.edges_relaxed

    def test_smaller_delta_more_phases(self, small_grid):
        few = delta_stepping(small_grid, 0, delta=10.0).stats.phases
        many = delta_stepping(small_grid, 0, delta=0.05).stats.phases
        assert many > few

    def test_settled_count(self, small_grid):
        res = delta_stepping(small_grid, 0)
        assert res.stats.vertices_settled == res.num_reached()


class TestChooseDelta:
    def test_positive(self, medium_er):
        assert choose_delta(medium_er) > 0

    def test_empty_graph(self):
        g = from_edge_list(3, [])
        assert choose_delta(g) == 1.0

    def test_zero_mean_weight_raises(self):
        from repro.errors import KSPError
        from repro.graph.csr import CSRGraph

        g = CSRGraph(
            np.array([0, 1, 2], dtype=np.int64),
            np.array([1, 0], dtype=np.int64),
            np.array([0.0, 0.0]),
            check=False,
        )
        with pytest.raises(KSPError, match="mean edge weight"):
            choose_delta(g)

    def test_nan_mean_weight_raises(self):
        from repro.errors import KSPError
        from repro.graph.csr import CSRGraph

        g = CSRGraph(
            np.array([0, 1, 2], dtype=np.int64),
            np.array([1, 0], dtype=np.int64),
            np.array([np.nan, 1.0]),
            check=False,
        )
        with pytest.raises(KSPError, match="nan"):
            choose_delta(g)
