"""Unit tests for the Dijkstra kernel."""

import numpy as np
import pytest

from repro.errors import VertexError
from repro.graph.build import from_edge_list
from repro.graph.generators import erdos_renyi, grid_network
from repro.paths import INF, reconstruct_path
from repro.sssp.dijkstra import dijkstra


class TestBasics:
    def test_diamond_distances(self, diamond_graph):
        res = dijkstra(diamond_graph, 0)
        assert res.dist[0] == 0.0
        assert res.dist[3] == pytest.approx(2.0)
        assert res.parent[0] == 0

    def test_parent_reconstruction(self, diamond_graph):
        res = dijkstra(diamond_graph, 0)
        assert reconstruct_path(res.parent, 0, 3) == [0, 1, 3]

    def test_unreachable_is_inf(self):
        g = from_edge_list(3, [(0, 1, 1.0)])
        res = dijkstra(g, 0)
        assert res.dist[2] == INF
        assert res.parent[2] == -1
        assert not res.reached(2)
        assert res.num_reached() == 2

    def test_bad_source(self, diamond_graph):
        with pytest.raises(VertexError):
            dijkstra(diamond_graph, 9)

    def test_bad_target(self, diamond_graph):
        with pytest.raises(VertexError):
            dijkstra(diamond_graph, 0, target=9)

    def test_matches_scipy(self):
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import dijkstra as sp_dijkstra

        g = erdos_renyi(120, 4.0, seed=6)
        mat = csr_matrix(
            (g.weights, g.indices, g.indptr),
            shape=(g.num_vertices, g.num_vertices),
        )
        expect = sp_dijkstra(mat, indices=0)
        got = dijkstra(g, 0).dist
        assert np.allclose(
            np.nan_to_num(got, posinf=-1), np.nan_to_num(expect, posinf=-1)
        )


class TestTargetStop:
    def test_target_distance_final(self, small_grid):
        full = dijkstra(small_grid, 0)
        stopped = dijkstra(small_grid, 0, target=63)
        assert stopped.dist[63] == pytest.approx(full.dist[63])

    def test_early_stop_saves_work(self, small_grid):
        full = dijkstra(small_grid, 0)
        stopped = dijkstra(small_grid, 0, target=9)
        assert (
            stopped.stats.vertices_settled < full.stats.vertices_settled
        )


class TestBans:
    def test_banned_vertex_forces_detour(self, diamond_graph):
        res = dijkstra(diamond_graph, 0, banned_vertices=[1])
        assert res.dist[3] == pytest.approx(3.0)  # via vertex 2

    def test_banned_vertices_as_mask(self, diamond_graph):
        mask = np.zeros(4, dtype=bool)
        mask[1] = True
        res = dijkstra(diamond_graph, 0, banned_vertices=mask)
        assert res.dist[3] == pytest.approx(3.0)

    def test_banned_source_raises(self, diamond_graph):
        with pytest.raises(VertexError):
            dijkstra(diamond_graph, 0, banned_vertices=[0])

    def test_banned_edge_forces_next_route(self, diamond_graph):
        res = dijkstra(diamond_graph, 0, banned_edges={(0, 1)})
        assert res.dist[3] == pytest.approx(3.0)

    def test_ban_all_routes(self, diamond_graph):
        res = dijkstra(
            diamond_graph, 0, banned_edges={(0, 1), (0, 2), (0, 3)}
        )
        assert res.dist[3] == INF

    def test_cutoff_prunes_long_labels(self, diamond_graph):
        res = dijkstra(diamond_graph, 0, cutoff=2.5)
        assert res.dist[3] == pytest.approx(2.0)
        res2 = dijkstra(diamond_graph, 0, cutoff=1.5, banned_vertices=[1])
        assert res2.dist[3] == INF


class TestStats:
    def test_counters_populated(self, small_grid):
        res = dijkstra(small_grid, 0)
        assert res.stats.vertices_settled == 64
        assert res.stats.edges_relaxed > 0
        assert res.stats.heap_pushes >= 63
        assert res.stats.phases == res.stats.vertices_settled
        assert res.stats.total_work > 0

    def test_source_with_no_edges(self):
        g = from_edge_list(2, [(1, 0, 1.0)])
        res = dijkstra(g, 0)
        assert res.dist[1] == INF
        assert res.stats.vertices_settled == 1


class TestGridGroundTruth:
    def test_unit_grid_manhattan(self):
        g = grid_network(5, 5, weight_scheme="unit", seed=0)
        res = dijkstra(g, 0)
        for r in range(5):
            for c in range(5):
                assert res.dist[r * 5 + c] == pytest.approx(r + c)
