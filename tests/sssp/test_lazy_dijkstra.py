"""Unit tests for the resumable Dijkstra used by SB*."""

import numpy as np
import pytest

from repro.errors import VertexError
from repro.graph.build import from_edge_list
from repro.graph.generators import erdos_renyi
from repro.paths import INF
from repro.sssp.dijkstra import dijkstra
from repro.sssp.lazy_dijkstra import LazyDijkstra


class TestIncremental:
    def test_distance_matches_dijkstra(self, medium_er):
        full = dijkstra(medium_er, 0)
        ld = LazyDijkstra(medium_er, 0)
        for v in (5, 50, 149, 1):
            assert ld.distance_to(v) == pytest.approx(
                float(full.dist[v]), abs=1e-12
            ) or (ld.distance_to(v) == INF and not np.isfinite(full.dist[v]))

    def test_resumption_does_not_redo_work(self, medium_er):
        ld = LazyDijkstra(medium_er, 0)
        ld.distance_to(10)
        settled_before = ld.stats.vertices_settled
        ld.distance_to(10)  # cached, no extra work
        assert ld.stats.vertices_settled == settled_before

    def test_lazy_settles_less_than_full(self, medium_er):
        full = dijkstra(medium_er, 0)
        near = int(np.argsort(full.dist)[3])  # a close vertex
        ld = LazyDijkstra(medium_er, 0)
        ld.distance_to(near)
        assert ld.stats.vertices_settled < full.stats.vertices_settled

    def test_run_to_completion_matches(self, medium_er):
        ld = LazyDijkstra(medium_er, 0)
        ld.distance_to(40)  # partially settle first
        res = ld.run_to_completion()
        full = dijkstra(medium_er, 0)
        assert np.allclose(
            np.nan_to_num(res.dist, posinf=-1),
            np.nan_to_num(full.dist, posinf=-1),
        )
        assert ld.exhausted

    def test_unreachable_vertex(self):
        g = from_edge_list(3, [(0, 1, 1.0)])
        ld = LazyDijkstra(g, 0)
        assert ld.distance_to(2) == INF


class TestBans:
    def test_banned_vertex_unreachable(self, diamond_graph):
        ld = LazyDijkstra(diamond_graph, 0, banned_vertices=[1, 2])
        assert ld.distance_to(3) == pytest.approx(4.0)  # only direct edge

    def test_banned_is_inf(self, diamond_graph):
        ld = LazyDijkstra(diamond_graph, 0, banned_vertices=[1])
        assert ld.distance_to(1) == INF

    def test_banned_source_rejected(self, diamond_graph):
        with pytest.raises(VertexError):
            LazyDijkstra(diamond_graph, 0, banned_vertices=[0])

    def test_bad_vertex(self, diamond_graph):
        ld = LazyDijkstra(diamond_graph, 0)
        with pytest.raises(VertexError):
            ld.distance_to(99)


class TestSnapshot:
    def test_snapshot_is_independent(self, medium_er):
        ld = LazyDijkstra(medium_er, 0)
        ld.distance_to(10)
        clone = ld.snapshot()
        before = clone.stats.vertices_settled
        ld.run_to_completion()
        assert clone.stats.vertices_settled == before

    def test_snapshot_continues_correctly(self, medium_er):
        full = dijkstra(medium_er, 0)
        ld = LazyDijkstra(medium_er, 0)
        ld.distance_to(10)
        clone = ld.snapshot()
        res = clone.run_to_completion()
        assert np.allclose(
            np.nan_to_num(res.dist, posinf=-1),
            np.nan_to_num(full.dist, posinf=-1),
        )


def test_memory_accounting(medium_er):
    ld = LazyDijkstra(medium_er, 0)
    assert ld.memory_bytes() > 0
    before = ld.memory_bytes()
    ld.run_to_completion()
    assert ld.memory_bytes() <= before + 16 * medium_er.num_edges
