"""Hypothesis property tests for the Terrace container.

The model is a plain ``dict[(u, v)] -> w``: every batched mutation the
container sees is mirrored into the model, and after each batch the
container must agree with it on edge count, per-vertex degree, and the
full neighbour list — and :meth:`TerraceGraph.check_invariants` must
pass.  Level migrations are exercised in both directions, and CSR
extraction must round-trip structurally.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dyn.terrace import TerraceGraph
from repro.graph.build import from_edge_list


@st.composite
def mutation_scripts(draw, max_n=12, max_batches=6, max_batch=10):
    """A vertex count plus a list of (kind, src, dst, w) batches."""
    n = draw(st.integers(2, max_n))
    batches = []
    for _ in range(draw(st.integers(1, max_batches))):
        kind = draw(st.sampled_from(["insert", "delete", "reweight"]))
        size = draw(st.integers(1, max_batch))
        seed = draw(st.integers(0, 2**31 - 1))
        rng = np.random.default_rng(seed)
        src = rng.integers(0, n, size=size)
        dst = rng.integers(0, n, size=size)
        w = rng.random(size) * 9 + 0.5
        batches.append((kind, src, dst, w))
    return n, batches


def _apply_model(model: dict, kind: str, src, dst, w) -> None:
    if kind == "insert":
        # dedup keeps the lighter weight — both within the batch
        # (lexsort by (target, weight), first wins) and against stored;
        # self-loops are dropped, matching the CSR substrate
        for u, v, weight in zip(src.tolist(), dst.tolist(), w.tolist()):
            if u == v:
                continue
            cur = model.get((u, v))
            if cur is None or weight < cur:
                model[(u, v)] = weight
    elif kind == "delete":
        for u, v in zip(src.tolist(), dst.tolist()):
            model.pop((u, v), None)
    else:
        for u, v, weight in zip(src.tolist(), dst.tolist(), w.tolist()):
            if (u, v) in model:
                model[(u, v)] = weight


def _assert_agrees(tg: TerraceGraph, model: dict, n: int) -> None:
    assert tg.num_edges == len(model)
    for v in range(n):
        want = sorted((t, w) for (s, t), w in model.items() if s == v)
        got_t, got_w = tg.neighbors(v)
        assert got_t.tolist() == [t for t, _ in want]
        assert got_w.tolist() == pytest.approx([w for _, w in want])
        assert tg.degree(v) == len(want)


@given(mutation_scripts())
@settings(max_examples=60, deadline=None)
def test_batches_match_dict_model(case):
    n, batches = case
    tg = TerraceGraph(n)
    model: dict = {}
    for kind, src, dst, w in batches:
        if kind == "insert":
            tg.insert_edges(src, dst, w)
        elif kind == "delete":
            tg.delete_edges(src, dst)
        else:
            tg.reweight_edges(src, dst, w)
        _apply_model(model, kind, src, dst, w)
        tg.check_invariants()
        _assert_agrees(tg, model, n)


@given(st.integers(9, 40), st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_level_migrations_both_directions(deg, seed):
    """small -> medium on insert past the cap, back to small on delete."""
    n = deg + 1
    tg = TerraceGraph(n)
    targets = np.arange(1, deg + 1)
    w = np.random.default_rng(seed).random(deg) + 0.1
    tg.insert_edges(np.zeros(deg, dtype=np.int64), targets, w)
    assert tg.level_name(0) == "medium"  # deg >= 9 > _SMALL_CAP
    migrations = tg.stats.level_migrations
    assert migrations >= 1
    tg.check_invariants()
    # delete down to below the small cap: must migrate back down
    tg.delete_edges(np.zeros(deg - 4, dtype=np.int64), targets[: deg - 4])
    assert tg.level_name(0) == "small"
    assert tg.stats.level_migrations > migrations
    assert tg.degree(0) == 4
    tg.check_invariants()


def test_large_level_round_trip():
    """> 512 out-edges lands in the chunked large level and back."""
    n = 600
    tg = TerraceGraph(n)
    targets = np.arange(1, n)
    tg.insert_edges(
        np.zeros(n - 1, dtype=np.int64), targets, np.ones(n - 1)
    )
    assert tg.level_name(0) == "large"
    tg.check_invariants()
    got_t, _ = tg.neighbors(0)
    assert np.array_equal(got_t, targets)
    tg.delete_edges(np.zeros(n - 9, dtype=np.int64), targets[: n - 9])
    assert tg.level_name(0) == "small"
    tg.check_invariants()


@given(mutation_scripts(max_batches=4))
@settings(max_examples=40, deadline=None)
def test_csr_round_trip(case):
    """to_csr() is exactly the live edge set, structurally."""
    n, batches = case
    tg = TerraceGraph(n)
    model: dict = {}
    for kind, src, dst, w in batches:
        if kind == "insert":
            tg.insert_edges(src, dst, w)
        elif kind == "delete":
            tg.delete_edges(src, dst)
        else:
            tg.reweight_edges(src, dst, w)
        _apply_model(model, kind, src, dst, w)
    snap = tg.to_csr()
    ref = from_edge_list(n, [(u, v, w) for (u, v), w in model.items()])
    assert snap.structurally_equal(ref)


def test_csr_extraction_deterministic():
    """Two extractions of the same state are bitwise identical."""
    rng = np.random.default_rng(7)
    tg = TerraceGraph(30)
    tg.insert_edges(
        rng.integers(0, 30, size=80),
        rng.integers(0, 30, size=80),
        rng.random(80) + 0.1,
    )
    tg.delete_vertices([5, 11])
    a, b = tg.to_csr(), tg.to_csr()
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert a.weights.tobytes() == b.weights.tobytes()
