"""Graph-version consistency when the fabric replicates mutations.

The dyn-layer contract the fabric leans on: a :class:`LiveGraph` can be
(re)built *at* a checkpointed version, and a mutation batch applied to
every surviving replica leaves them all at the authority's version even
when a kill lands mid-stream.
"""

import pytest

from repro.distributed.comm import FaultPlan
from repro.dyn.live import LiveGraph
from repro.dyn.stream import IncidentStream
from repro.fabric.fabric import FabricConfig, ServingFabric
from repro.fabric.replica import ACTIVE
from repro.graph.suite import suite_graph
from repro.load.arrivals import arrival_process
from repro.load.mixes import make_mix


class TestLiveGraphVersionSeed:
    def test_starts_at_given_version(self):
        graph = suite_graph("LJ", "tiny")
        live = LiveGraph(graph, version=7)
        assert live.version == 7
        assert live.snapshot().version == 7

    def test_negative_version_rejected(self):
        graph = suite_graph("LJ", "tiny")
        with pytest.raises(ValueError):
            LiveGraph(graph, version=-1)

    def test_default_stays_zero(self):
        graph = suite_graph("LJ", "tiny")
        assert LiveGraph(graph).version == 0


class TestKillDuringMutations:
    @pytest.fixture(scope="class")
    def outcome(self):
        graph = suite_graph("LJ", "tiny")
        config = FabricConfig(replicas=3, seed=0)
        plan = FaultPlan.from_specs(["fabric.mutate:rankfail:2@R2"], seed=0)
        fabric = ServingFabric(
            graph,
            make_mix(graph, {"kind": "uniform", "scc": True}),
            config=config,
            fault_plan=plan,
        )
        batches = IncidentStream(seed=3, rate=80.0).batches(
            fabric.authority, 0.5
        )
        report = fabric.run(
            arrival_process({"kind": "poisson", "rate": 300.0}),
            horizon=0.5,
            max_queries=120,
            mutations=batches,
        )
        return fabric, report

    def test_survivors_share_the_authority_version(self, outcome):
        fabric, report = outcome
        assert report.mutation_batches > 0
        assert len(report.kills) == 1
        version = fabric.authority.version
        versions = {
            rid: fabric.replicas[rid].server.batch.version
            for rid in sorted(fabric.replicas)
            if fabric.replicas[rid].state == ACTIVE
        }
        assert versions, "no active replicas after the run"
        assert set(versions.values()) == {version}

    def test_recovered_replica_replayed_the_log(self, outcome):
        fabric, report = outcome
        kill = report.kills[0]
        assert kill.replica == 2
        assert kill.recovered_at is not None
        # batches that landed while dead were replayed, not dropped
        assert fabric.replicas[2].server.batch.version == fabric.authority.version
