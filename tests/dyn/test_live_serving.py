"""Live-graph serving: versioned snapshots, surgical invalidation, and
certificate-carried incremental re-solve.

The load-bearing assertion here is the acceptance criterion of the
versioned serving path: a query whose pruning decision was carried across
a mutation batch by :func:`~repro.core.pruning.prune_reuse_certificate`
must produce paths **bitwise identical** to a cold
:class:`~repro.core.peek.PeeK` solve on the same snapshot.
"""

import numpy as np
import pytest

from repro.core.batch import BatchPeeK
from repro.core.peek import PeeK
from repro.core.pruning import k_upper_bound_prune, prune_reuse_certificate
from repro.dyn.live import LiveGraph
from repro.dyn.stream import IncidentStream, MutationBatch, MutationSummary
from repro.errors import SanitizerError, VertexError
from repro.graph.build import from_edge_list
from repro.graph.generators import erdos_renyi
from repro.load.harness import LoadHarness
from repro.serve.query import Query
from repro.serve.server import QueryServer
from repro.sssp.dijkstra import dijkstra


def fan8():
    """The conftest fan graph plus an isolated 6→7 component.

    For query (0, 4, k=3) the bound is 6: vertex 5 (spSum 20) and the
    weight-10 edges are pruned, and 6/7 are unreachable — mutations
    confined to {5, 6, 7} stay outside the kept region.
    """
    edges = [
        (0, 1, 1.0), (1, 4, 1.0),
        (0, 2, 2.0), (2, 4, 2.0),
        (0, 3, 3.0), (3, 4, 3.0),
        (0, 5, 10.0), (5, 4, 10.0),
        (6, 7, 1.0),
    ]
    return from_edge_list(8, edges)


def _summary(
    *,
    version=1,
    touched=(),
    has_insert=False,
    has_decrease=False,
    up=(),
    tombstoned=(),
):
    return MutationSummary(
        version=version,
        touched=np.asarray(sorted(touched), dtype=np.int64),
        has_insert=has_insert,
        has_decrease=has_decrease,
        up_src=np.asarray([e[0] for e in up], dtype=np.int64),
        up_dst=np.asarray([e[1] for e in up], dtype=np.int64),
        up_old_w=np.asarray([e[2] for e in up], dtype=np.float64),
        tombstoned=np.asarray(sorted(tombstoned), dtype=np.int64),
    )


class TestLiveGraph:
    def test_versions_are_monotone(self):
        live = LiveGraph(fan8())
        assert live.version == 0
        assert live.snapshot().summary is None
        s1 = live.apply(MutationBatch.build(reweights=[(0, 5, 12.0)]))
        s2 = live.apply(MutationBatch.build(deletes=[(6, 7)]))
        assert (s1.version, s2.version) == (1, 2)
        assert live.version == 2
        assert live.snapshot() is s2

    def test_invalid_batch_is_all_or_nothing(self):
        live = LiveGraph(fan8())
        bad = MutationBatch.build(
            deletes=[(0, 1)],  # valid half
            inserts=[(0, 99, 1.0)],  # invalid half
        )
        with pytest.raises(VertexError):
            live.apply(bad)
        assert live.version == 0
        assert live.terrace.has_edge(0, 1)  # the delete did not land

    def test_delete_records_up_edge_with_old_weight(self):
        live = LiveGraph(fan8())
        s = live.apply(MutationBatch.build(deletes=[(0, 5), (3, 0)]))
        # (3, 0) never existed: only the real deletion is an up-edge
        assert s.summary.up_src.tolist() == [0]
        assert s.summary.up_old_w.tolist() == [10.0]
        assert s.summary.increase_only

    def test_reweight_classification(self):
        live = LiveGraph(fan8())
        up = live.apply(MutationBatch.build(reweights=[(0, 5, 15.0)]))
        assert up.summary.up_old_w.tolist() == [10.0]
        assert up.summary.increase_only
        down = live.apply(MutationBatch.build(reweights=[(0, 5, 2.0)]))
        assert down.summary.has_decrease
        same = live.apply(MutationBatch.build(reweights=[(0, 5, 2.0)]))
        assert same.summary.increase_only and same.summary.up_src.size == 0

    def test_insert_classification(self):
        live = LiveGraph(fan8())
        new = live.apply(MutationBatch.build(inserts=[(1, 2, 1.0)]))
        assert new.summary.has_insert
        heavier = live.apply(MutationBatch.build(inserts=[(1, 2, 5.0)]))
        assert heavier.summary.increase_only  # dedup keeps the lighter
        lighter = live.apply(MutationBatch.build(inserts=[(1, 2, 0.5)]))
        assert lighter.summary.has_decrease and not lighter.summary.has_insert

    def test_insert_toward_tombstoned_target_is_ineffective(self):
        live = LiveGraph(fan8())
        live.apply(MutationBatch.build(tombstones=[7]))
        s = live.apply(MutationBatch.build(inserts=[(6, 7, 1.0)]))
        assert s.summary.increase_only

    def test_tombstones_record_only_newly_dead(self):
        live = LiveGraph(fan8())
        s1 = live.apply(MutationBatch.build(tombstones=[5]))
        assert s1.summary.tombstoned.tolist() == [5]
        s2 = live.apply(MutationBatch.build(tombstones=[5, 6]))
        assert s2.summary.tombstoned.tolist() == [6]
        assert s2.graph.num_edges == live.terrace.num_live_edges()

    def test_sssp_matches_dijkstra_at_every_version(self):
        """Spine Dijkstra == snapshot Dijkstra across a seeded stream."""
        live = LiveGraph(erdos_renyi(80, 4.0, seed=13))
        stream = IncidentStream(seed=21, rate=15.0, p_tombstone=0.0)
        versions = 0
        for batch in stream.batches(live, horizon=2.0):
            snap = live.apply(batch)
            a = live.terrace.sssp(0).dist
            b = dijkstra(snap.graph, 0).dist
            assert np.allclose(
                np.nan_to_num(a, posinf=-1), np.nan_to_num(b, posinf=-1)
            )
            versions += 1
        assert versions > 0


class TestReuseCertificate:
    @pytest.fixture
    def prune(self):
        return k_upper_bound_prune(fan8(), 0, 4, 3, kernel="dijkstra")

    def test_increase_outside_kept_region_accepted(self, prune):
        # (0, 5) has a pruned endpoint; {6, 7} are unreachable
        ok = _summary(up=[(0, 5, 10.0), (6, 7, 1.0)], touched=(0, 5, 6, 7))
        assert prune_reuse_certificate(prune, ok)

    def test_insert_or_decrease_refused(self, prune):
        assert not prune_reuse_certificate(prune, _summary(has_insert=True))
        assert not prune_reuse_certificate(prune, _summary(has_decrease=True))

    def test_up_edge_inside_kept_region_refused(self, prune):
        inside = _summary(up=[(0, 1, 1.0)], touched=(0, 1))
        assert not prune_reuse_certificate(prune, inside)

    def test_heavy_up_edge_between_kept_vertices_accepted(self, prune):
        # both endpoints kept but the old weight already exceeded the
        # bound: the edge was outside the pruned subgraph all along
        heavy = _summary(up=[(1, 4, 7.5)], touched=(1, 4))
        assert prune_reuse_certificate(prune, heavy)

    def test_tombstone_placement(self, prune):
        assert prune_reuse_certificate(prune, _summary(tombstoned=(5,)))
        assert not prune_reuse_certificate(prune, _summary(tombstoned=(2,)))


class TestVersionedBatchPeeK:
    def test_reuse_is_bitwise_identical_to_cold_peek(self):
        live = LiveGraph(fan8())
        bp = BatchPeeK(live.graph, kernel="dijkstra", versioned=True)
        bp.prepare(0, 4, 3).run()  # cold, memoises the pruning decision
        snap = live.apply(MutationBatch.build(reweights=[(0, 5, 15.0)]))
        assert snap.summary.increase_only
        bp.rebind(snap.graph, version=snap.version, summary=snap.summary)

        prep = bp.prepare(0, 4, 3)
        assert bp.prune_reused == 1 and prep.version == 1
        reused = prep.run()
        cold = PeeK(snap.graph, 0, 4, kernel="dijkstra").run(3)
        assert [p.vertices for p in reused.paths] == [
            p.vertices for p in cold.paths
        ]
        # bitwise, not approx: the certificate promises identical floats
        assert [p.distance for p in reused.paths] == [
            p.distance for p in cold.paths
        ]

    def test_decrease_forces_cold_resolve(self):
        live = LiveGraph(fan8())
        bp = BatchPeeK(live.graph, kernel="dijkstra", versioned=True)
        bp.prepare(0, 4, 3)
        snap = live.apply(
            MutationBatch.build(reweights=[(0, 5, 4.0), (5, 4, 4.0)])
        )
        assert snap.summary.has_decrease
        bp.rebind(snap.graph, version=snap.version, summary=snap.summary)
        assert bp.cache_info["prepared_cached"] == 0
        bp.prepare(0, 4, 3)
        assert bp.prune_reused == 0 and bp.prune_cold == 2
        # the re-solve sees the cleared road: 0-5-4 now costs 8
        cold = PeeK(snap.graph, 0, 4, kernel="dijkstra").run(4)
        assert cold.distances[-1] == 8.0

    def test_untouched_region_retains_sssp_cache(self):
        live = LiveGraph(fan8())
        bp = BatchPeeK(live.graph, kernel="dijkstra", versioned=True)
        bp.prepare(0, 4, 3)
        snap = live.apply(MutationBatch.build(reweights=[(6, 7, 3.0)]))
        bp.rebind(snap.graph, version=snap.version, summary=snap.summary)
        info = bp.cache_info
        assert info["invalidated"] == 0
        assert info["retained"] == 3  # fwd(0) + rev(4) + prepared(0,4,3)

    def test_touched_region_evicts_sssp_cache(self):
        live = LiveGraph(fan8())
        bp = BatchPeeK(live.graph, kernel="dijkstra", versioned=True)
        bp.prepare(0, 4, 3)
        snap = live.apply(MutationBatch.build(reweights=[(0, 1, 9.0)]))
        bp.rebind(snap.graph, version=snap.version, summary=snap.summary)
        info = bp.cache_info
        # vertex 1 is finite in both trees and (0,1) is a kept up-edge:
        # both SSSP halves and the pruning decision must go
        assert info["invalidated"] == 3
        assert info["forward_cached"] == info["reverse_cached"] == 0

    def test_rebind_requires_monotone_version(self):
        live = LiveGraph(fan8())
        bp = BatchPeeK(live.graph, kernel="dijkstra", versioned=True)
        snap = live.apply(MutationBatch.build(reweights=[(6, 7, 2.0)]))
        bp.rebind(snap.graph, version=snap.version, summary=snap.summary)
        with pytest.raises(ValueError):
            bp.rebind(snap.graph, version=snap.version, summary=snap.summary)

    def test_san_dyn_audits_reuse(self):
        live = LiveGraph(fan8())
        bp = BatchPeeK(
            live.graph, kernel="dijkstra", versioned=True, sanitize=True
        )
        bp.prepare(0, 4, 3)
        snap = live.apply(MutationBatch.build(reweights=[(0, 5, 20.0)]))
        bp.rebind(snap.graph, version=snap.version, summary=snap.summary)
        bp.prepare(0, 4, 3)  # sound reuse: SAN-DYN passes silently
        assert bp.prune_reused == 1

    def test_san_dyn_catches_unsound_reuse(self):
        """Force a stale decision past the certificate: SAN-DYN fires."""
        live = LiveGraph(fan8())
        bp = BatchPeeK(
            live.graph, kernel="dijkstra", versioned=True, sanitize=True
        )
        bp.prepare(0, 4, 3)
        snap = live.apply(MutationBatch.build(reweights=[(0, 1, 50.0)]))
        bp.graph = snap.graph  # bypass rebind's invalidation on purpose
        bp.version = snap.version
        with pytest.raises(SanitizerError):
            bp.prepare(0, 4, 3)


class TestServerLiveServing:
    def test_static_server_rejects_mutations(self, fan_graph):
        server = QueryServer(fan_graph)
        with pytest.raises(ValueError):
            server.apply_mutations(MutationBatch.build(deletes=[(0, 1)]))

    def test_graph_version_stamped_on_results(self):
        live = LiveGraph(fan8())
        server = QueryServer(live, kernel="dijkstra")
        r0 = server.serve(0, 4, 3)
        server.apply_mutations(MutationBatch.build(reweights=[(0, 5, 11.0)]))
        r1 = server.serve(0, 4, 3)
        assert (r0.graph_version, r1.graph_version) == (0, 1)
        assert server.counters["mutation_batches"] == 1
        assert server.live.version == 1

    def test_served_reuse_matches_cold_peek(self):
        live = LiveGraph(fan8())
        server = QueryServer(live, kernel="dijkstra", sanitize=True)
        server.serve(0, 4, 3)
        server.apply_mutations(MutationBatch.build(reweights=[(5, 4, 30.0)]))
        result = server.serve(0, 4, 3)
        assert server.batch.cache_info["prune_reused"] == 1
        cold = PeeK(live.graph, 0, 4, kernel="dijkstra").run(3)
        assert [p.vertices for p in result.paths] == [
            p.vertices for p in cold.paths
        ]
        assert result.distances == cold.distances

    def test_harness_applies_mutation_feed_in_order(self):
        live = LiveGraph(fan8())
        server = QueryServer(live, kernel="dijkstra")
        queries = [
            Query(0, 4, 3, request_id=f"q{i}", issued_at=0.25 * i)
            for i in range(5)
        ]
        batches = [
            MutationBatch.build(reweights=[(0, 5, 11.0)], at=0.3),
            MutationBatch.build(reweights=[(0, 5, 12.0)], at=0.6),
            MutationBatch.build(reweights=[(0, 5, 13.0)], at=9.9),  # late
        ]
        report = LoadHarness(server, mix=None, seed=0).run(
            queries, horizon=1.5, mutations=iter(batches)
        )
        assert report.mutation_batches == 2  # the at=9.9 batch never fires
        assert report.metrics()["mutation_batches"] == 2
        assert server.counters["mutation_batches"] == 2
        assert server.live.version == 2
        assert report.count("complete") == len(queries)
