"""Regression tests for the Terrace update-path bugs this PR fixes.

Three bugs, each pinned by a failing-first test:

1. ``insert_edges`` accepted out-of-range targets and non-finite /
   non-positive weights, storing garbage that crashed ``neighbors()``
   (or silently violated the paper's Definition 1) much later;
2. updates on a tombstoned *source* silently mutated hidden adjacency,
   drifting ``num_edges`` away from what any query could ever see;
3. ``delete_edges`` charged ``point_deletes`` (and ``elements_moved``)
   for *requested* deletions, not actual ones, skewing the Figure 12
   cost comparison whenever the workload asked to delete missing edges.
"""

import numpy as np
import pytest

from repro.dyn.terrace import TerraceGraph
from repro.errors import InvalidWeightError, VertexError
from repro.graph.build import from_edge_list


def small_graph() -> TerraceGraph:
    g = from_edge_list(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
    return TerraceGraph.from_csr(g)


class TestInsertValidation:
    """Bug 1: validation must happen before anything is stored."""

    def test_out_of_range_dst_rejected(self):
        tg = small_graph()
        with pytest.raises(VertexError):
            tg.insert_edges([0, 0], [2, 99], [1.0, 1.0])
        # nothing from the batch landed — not even the valid half
        assert tg.num_edges == 3
        assert not tg.has_edge(0, 2)
        tg.check_invariants()

    def test_negative_dst_rejected(self):
        tg = small_graph()
        with pytest.raises(VertexError):
            tg.insert_edges([0], [-1], [1.0])
        tg.check_invariants()

    def test_out_of_range_src_rejected(self):
        tg = small_graph()
        with pytest.raises(VertexError):
            tg.insert_edges([4], [0], [1.0])
        tg.check_invariants()

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_weights_rejected(self, bad):
        tg = small_graph()
        with pytest.raises(InvalidWeightError):
            tg.insert_edges([0, 0], [2, 3], [1.0, bad])
        assert tg.num_edges == 3
        tg.check_invariants()

    @pytest.mark.parametrize("bad", [0.0, float("nan"), float("-inf")])
    def test_bad_reweights_rejected(self, bad):
        tg = small_graph()
        with pytest.raises(InvalidWeightError):
            tg.reweight_edges([0], [1], [bad])
        _, w = tg.neighbors(0)
        assert w[0] == 1.0
        tg.check_invariants()

    def test_neighbors_never_sees_garbage(self):
        """The original failure mode: a stored bad target blowing up later."""
        tg = small_graph()
        with pytest.raises(VertexError):
            tg.insert_edges([1], [1000], [1.0])
        t, _ = tg.neighbors(1)  # must not raise
        assert t.tolist() == [2]


class TestDeadSourceUpdates:
    """Bug 2: updates through a tombstoned source must raise, not drift."""

    def test_insert_on_dead_source_raises(self):
        tg = small_graph()
        tg.delete_vertices([1])
        m = tg.num_edges
        with pytest.raises(VertexError):
            tg.insert_edges([1], [3], [1.0])
        assert tg.num_edges == m
        t, _ = tg.neighbors(1)
        assert t.size == 0
        tg.check_invariants()

    def test_delete_on_dead_source_raises(self):
        tg = small_graph()
        tg.delete_vertices([2])
        with pytest.raises(VertexError):
            tg.delete_edges([2], [3])
        tg.check_invariants()

    def test_reweight_on_dead_source_raises(self):
        tg = small_graph()
        tg.delete_vertices([0])
        with pytest.raises(VertexError):
            tg.reweight_edges([0], [1], [9.0])
        tg.check_invariants()

    def test_mixed_batch_rejected_wholesale(self):
        """One dead source poisons the whole batch (all-or-nothing)."""
        tg = small_graph()
        tg.delete_vertices([1])
        with pytest.raises(VertexError):
            tg.insert_edges([0, 1], [3, 3], [1.0, 1.0])
        assert not tg.has_edge(0, 3)
        tg.check_invariants()

    def test_insert_toward_dead_target_stored_not_live(self):
        tg = small_graph()
        tg.delete_vertices([3])
        before_stored = tg.num_edges
        before_live = tg.num_live_edges()
        tg.insert_edges([0], [3], [1.0])
        # stored (upper bound moves) but invisible to every query
        assert tg.num_edges == before_stored + 1
        assert not tg.has_edge(0, 3)
        assert tg.num_live_edges() == before_live
        tg.check_invariants()


class TestDeleteAccounting:
    """Bug 3: cost counters must charge actual work, not requests."""

    def test_missing_deletes_charge_nothing(self):
        tg = small_graph()
        removed = tg.delete_edges([0, 1, 3], [3, 3, 0])  # none exist
        assert removed == 0
        assert tg.stats.point_deletes == 0
        assert tg.stats.elements_moved == 0
        assert tg.num_edges == 3
        tg.check_invariants()

    def test_mixed_batch_charges_only_hits(self):
        tg = small_graph()
        removed = tg.delete_edges([0, 0, 1], [1, 3, 2])  # 2 of 3 exist
        assert removed == 2
        assert tg.stats.point_deletes == 2
        # only the two rebuilt vertices' elements are charged
        assert tg.stats.elements_moved == 2
        tg.check_invariants()

    def test_duplicate_delete_requests_counted_once(self):
        tg = small_graph()
        removed = tg.delete_edges([0, 0], [1, 1])
        assert removed == 1
        assert tg.stats.point_deletes == 1

    def test_reweight_counters(self):
        tg = small_graph()
        old = tg.reweight_edges([0, 0], [1, 3], [5.0, 5.0])
        assert old[0] == 1.0 and np.isnan(old[1])
        assert tg.stats.point_reweights == 1  # only the edge that existed
