"""Tests for mutation batches and the seeded incident stream."""

import numpy as np
import pytest

from repro.dyn.live import LiveGraph
from repro.dyn.stream import IncidentStream, MutationBatch
from repro.graph.generators import erdos_renyi


class TestMutationBatch:
    def test_build_and_size(self):
        b = MutationBatch.build(
            inserts=[(0, 1, 2.0)],
            deletes=[(2, 3), (4, 5)],
            reweights=[(6, 7, 1.5)],
            tombstones=[8],
            at=1.25,
        )
        assert b.size == 5
        assert not b.is_empty
        assert b.at == 1.25
        assert b.insert_w.dtype == np.float64
        assert b.delete_src.dtype == np.int64

    def test_empty(self):
        b = MutationBatch.build()
        assert b.is_empty
        assert b.size == 0

    def test_touched_vertices_sorted_unique(self):
        b = MutationBatch.build(
            inserts=[(9, 1, 2.0)],
            deletes=[(1, 3)],
            reweights=[(3, 9, 1.5)],
            tombstones=[0, 9],
        )
        assert b.touched_vertices().tolist() == [0, 1, 3, 9]


class TestIncidentStream:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            IncidentStream(rate=0.0)
        with pytest.raises(ValueError):
            IncidentStream(batch_size=0)
        with pytest.raises(ValueError):
            IncidentStream(congestion=(0.5, 2.0))
        with pytest.raises(ValueError):
            IncidentStream(
                p_close=0, p_congest=0, p_clear=0, p_reopen=0, p_tombstone=0
            )

    @staticmethod
    def _replay(seed: int) -> list[tuple]:
        live = LiveGraph(erdos_renyi(60, 4.0, seed=3))
        stream = IncidentStream(seed=seed, rate=20.0)
        trace = []
        for batch in stream.batches(live, horizon=2.0):
            trace.append(
                (
                    batch.at,
                    batch.delete_src.tolist(),
                    batch.delete_dst.tolist(),
                    batch.reweight_src.tolist(),
                    batch.reweight_w.tolist(),
                    batch.insert_src.tolist(),
                    batch.tombstone.tolist(),
                )
            )
            live.apply(batch)
        return trace

    def test_deterministic_replay(self):
        a = self._replay(42)
        b = self._replay(42)
        assert a and a == b

    def test_different_seeds_differ(self):
        assert self._replay(1) != self._replay(2)

    def test_increase_only_stream(self):
        """Without clears/reopens every summary satisfies increase_only."""
        live = LiveGraph(erdos_renyi(60, 4.0, seed=5))
        stream = IncidentStream(
            seed=9, rate=25.0, p_clear=0.0, p_reopen=0.0, p_tombstone=0.1
        )
        applied = 0
        for batch in stream.batches(live, horizon=2.0):
            snap = live.apply(batch)
            assert snap.summary.increase_only
            applied += 1
        assert applied > 0

    def test_full_mix_produces_decreases(self):
        """With clears enabled some batch must defeat the certificate."""
        live = LiveGraph(erdos_renyi(80, 5.0, seed=6))
        stream = IncidentStream(
            seed=3, rate=60.0, p_close=0.3, p_congest=0.4, p_clear=0.3,
            p_reopen=0.0, p_tombstone=0.0,
        )
        summaries = [
            live.apply(b).summary for b in stream.batches(live, horizon=4.0)
        ]
        assert any(not s.increase_only for s in summaries)

    def test_batch_mutations_disjoint(self):
        """A batch never touches the same edge twice."""
        live = LiveGraph(erdos_renyi(50, 4.0, seed=8))
        stream = IncidentStream(seed=11, rate=10.0, batch_size=8)
        for batch in stream.batches(live, horizon=3.0):
            pairs = list(
                zip(batch.delete_src.tolist(), batch.delete_dst.tolist())
            ) + list(
                zip(batch.reweight_src.tolist(), batch.reweight_dst.tolist())
            ) + list(
                zip(batch.insert_src.tolist(), batch.insert_dst.tolist())
            )
            assert len(pairs) == len(set(pairs))
            live.apply(batch)
