"""Unit tests for the Terrace-like hierarchical dynamic-graph container."""

import numpy as np
import pytest

from repro.dyn.terrace import TerraceGraph
from repro.errors import VertexError
from repro.graph.build import from_edge_list
from repro.graph.generators import erdos_renyi, preferential_attachment
from repro.sssp.dijkstra import dijkstra


class TestBulkLoad:
    def test_from_csr_preserves_edges(self, medium_er):
        tg = TerraceGraph.from_csr(medium_er)
        assert tg.num_vertices == medium_er.num_vertices
        assert tg.num_edges == medium_er.num_edges
        for v in range(0, medium_er.num_vertices, 17):
            want_t, want_w = medium_er.neighbors(v)
            got_t, got_w = tg.neighbors(v)
            order_w = np.argsort(want_t, kind="stable")
            assert np.array_equal(np.sort(got_t), np.sort(want_t))
            assert got_w.sum() == pytest.approx(want_w.sum())

    def test_levels_assigned_by_degree(self):
        g = preferential_attachment(800, 8, seed=4)
        tg = TerraceGraph.from_csr(g)
        levels = {tg.level_name(v) for v in range(g.num_vertices)}
        assert "small" in levels
        assert "medium" in levels or "large" in levels

    def test_empty_container(self):
        tg = TerraceGraph(3)
        assert tg.num_edges == 0
        t, w = tg.neighbors(0)
        assert t.size == 0

    def test_negative_size_rejected(self):
        with pytest.raises(VertexError):
            TerraceGraph(-1)


class TestDeletion:
    def test_delete_edges(self, medium_er):
        tg = TerraceGraph.from_csr(medium_er)
        src = medium_er.edge_sources()
        kill = np.arange(0, medium_er.num_edges, 3)
        removed = tg.delete_edges(src[kill], medium_er.indices[kill])
        assert removed == len(set(zip(src[kill].tolist(), medium_er.indices[kill].tolist())))
        for e in kill[:30].tolist():
            assert not tg.has_edge(int(src[e]), int(medium_er.indices[e]))

    def test_delete_missing_edge_is_noop(self, fan_graph):
        tg = TerraceGraph.from_csr(fan_graph)
        removed = tg.delete_edges(np.array([4]), np.array([0]))
        assert removed == 0
        assert tg.num_edges == fan_graph.num_edges

    def test_delete_vertices_tombstones(self, fan_graph):
        tg = TerraceGraph.from_csr(fan_graph)
        tg.delete_vertices([1])
        assert not tg.is_alive(1)
        t, _ = tg.neighbors(0)
        assert 1 not in t
        t1, _ = tg.neighbors(1)
        assert t1.size == 0

    def test_deleted_source_sssp_rejected(self, fan_graph):
        tg = TerraceGraph.from_csr(fan_graph)
        tg.delete_vertices([0])
        with pytest.raises(VertexError):
            tg.sssp(0)

    def test_mismatched_arrays(self, fan_graph):
        tg = TerraceGraph.from_csr(fan_graph)
        with pytest.raises(ValueError):
            tg.delete_edges(np.array([0, 1]), np.array([1]))

    def test_stats_counters(self, medium_er):
        tg = TerraceGraph.from_csr(medium_er)
        src = medium_er.edge_sources()
        kill = np.arange(0, medium_er.num_edges, 2)
        tg.delete_edges(src[kill], medium_er.indices[kill])
        assert tg.stats.point_deletes > 0
        assert tg.stats.elements_moved > 0


class TestInsertion:
    def test_insert_then_query(self):
        tg = TerraceGraph(4)
        tg.insert_edges([0, 0, 1], [1, 2, 3], [1.0, 2.0, 3.0])
        assert tg.has_edge(0, 1)
        assert tg.num_edges == 3

    def test_insert_triggers_level_migration(self):
        tg = TerraceGraph(40)
        # push vertex 0 from small (<=8) into medium
        targets = np.arange(1, 31)
        tg.insert_edges(
            np.zeros(30, dtype=np.int64), targets, np.ones(30)
        )
        assert tg.level_name(0) == "medium"
        assert tg.stats.level_migrations >= 1

    def test_duplicate_insert_keeps_lighter(self):
        tg = TerraceGraph(2)
        tg.insert_edges([0], [1], [5.0])
        tg.insert_edges([0], [1], [2.0])
        assert tg.num_edges == 1
        _, w = tg.neighbors(0)
        assert w[0] == 2.0


class TestSSSPEquivalence:
    def test_matches_csr_dijkstra(self, medium_er):
        tg = TerraceGraph.from_csr(medium_er)
        a = tg.sssp(0).dist
        b = dijkstra(medium_er, 0).dist
        assert np.allclose(
            np.nan_to_num(a, posinf=-1), np.nan_to_num(b, posinf=-1)
        )

    def test_matches_after_deletions(self):
        g = erdos_renyi(120, 4.0, seed=8)
        rng = np.random.default_rng(1)
        src = g.edge_sources()
        kill = rng.choice(g.num_edges, size=g.num_edges // 2, replace=False)
        tg = TerraceGraph.from_csr(g)
        tg.delete_edges(src[kill], g.indices[kill])
        # reference: CSR regenerated without those (u,v) pairs
        dead = set(zip(src[kill].tolist(), g.indices[kill].tolist()))
        edges = [
            (u, v, w)
            for u, v, w in g.iter_edges()
            if (u, v) not in dead
        ]
        ref_graph = from_edge_list(g.num_vertices, edges)
        a = tg.sssp(0).dist
        b = dijkstra(ref_graph, 0).dist
        assert np.allclose(
            np.nan_to_num(a, posinf=-1), np.nan_to_num(b, posinf=-1)
        )


def test_memory_accounting(medium_er):
    tg = TerraceGraph.from_csr(medium_er)
    before = tg.memory_bytes()
    src = medium_er.edge_sources()
    kill = np.arange(medium_er.num_edges)
    tg.delete_edges(src[kill], medium_er.indices[kill])
    assert tg.memory_bytes() < before
