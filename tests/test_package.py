"""Public API surface: the names README and the paper-reader expect."""

import repro


def test_version():
    assert repro.__version__ == "1.5.0"


def test_public_names_importable():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_top_level_workflow(fan_graph):
    result = repro.peek_ksp(fan_graph, 0, 4, 3)
    assert len(result.paths) == 3
    assert isinstance(result.paths[0], repro.Path)


def test_algorithm_registry_exposed():
    assert "PeeK" in repro.ALGORITHMS
    assert callable(repro.make_algorithm)


def test_docstring_example_runs():
    """The __init__ docstring example must stay true."""
    from repro.graph.generators import grid_network

    g = grid_network(20, 20, seed=1)
    result = repro.peek_ksp(g, 0, 399, k=4)
    assert len(result.paths) == 4
    d = result.distances
    assert d == sorted(d)
