"""Tests for the parsimonious sidetrack family (PSB / PSB-v2 / PSB-v3)."""

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi
from repro.ksp.psb import PSBKSP, PSBv2KSP, PSBv3KSP, psb_ksp
from repro.ksp.sidetrack import SidetrackKSP
from repro.ksp.yen import yen_ksp
from tests.conftest import random_reachable_pair

VARIANTS = (PSBKSP, PSBv2KSP, PSBv3KSP)


class TestCorrectness:
    @pytest.mark.parametrize("cls", VARIANTS)
    def test_fan_graph(self, fan_graph, cls):
        res = cls(fan_graph, 0, 4).run(4)
        assert res.distances == pytest.approx([2.0, 4.0, 6.0, 20.0])

    @pytest.mark.parametrize("cls", VARIANTS)
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_yen(self, cls, seed):
        g = erdos_renyi(40, 3.0, seed=seed + 140)
        s, t = random_reachable_pair(g, seed=seed)
        assert np.allclose(
            cls(g, s, t).run(8).distances, yen_ksp(g, s, t, 8).distances
        )

    def test_wrapper_variants(self, fan_graph):
        for variant in ("v1", "v2", "v3"):
            res = psb_ksp(fan_graph, 0, 4, 3, variant=variant)
            assert res.distances == pytest.approx([2.0, 4.0, 6.0])


class TestParsimony:
    def test_psb_never_exceeds_sb_memory(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=44)
        sb = SidetrackKSP(medium_er, s, t)
        sb.run(10)
        psb = PSBKSP(medium_er, s, t)
        psb.run(10)
        assert psb.stats.peak_tree_bytes <= sb.stats.peak_tree_bytes

    def test_v2_threshold_reduces_cache(self, medium_er):
        """A tight threshold must cache no more trees than a loose one."""
        s, t = random_reachable_pair(medium_er, seed=44)
        loose = PSBv2KSP(medium_er, s, t, threshold=100.0)
        loose.run(10)
        tight = PSBv2KSP(medium_er, s, t, threshold=1.0)
        tight.run(10)
        assert len(tight._trees) <= len(loose._trees)
        # caching policy must not change results
        assert np.allclose(
            PSBv2KSP(medium_er, s, t, threshold=1.0).run(10).distances,
            PSBv2KSP(medium_er, s, t, threshold=100.0).run(10).distances,
        )

    def test_v2_bad_threshold(self, fan_graph):
        with pytest.raises(ValueError):
            PSBv2KSP(fan_graph, 0, 4, threshold=0.5)

    def test_v3_budget_bounds_cache(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=45)
        tiny_budget = PSBv3KSP(medium_er, s, t, memory_budget_bytes=1)
        tiny_budget.run(10)
        roomy = PSBv3KSP(medium_er, s, t, memory_budget_bytes=1 << 30)
        roomy.run(10)
        assert (
            tiny_budget.stats.peak_tree_bytes <= roomy.stats.peak_tree_bytes
        )

    def test_v3_bad_budget(self, fan_graph):
        with pytest.raises(ValueError):
            PSBv3KSP(fan_graph, 0, 4, memory_budget_bytes=0)

    def test_v3_threshold_adapts_downward(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=46)
        algo = PSBv3KSP(medium_er, s, t, memory_budget_bytes=1)
        start = algo.threshold
        algo.run(8)
        assert algo.threshold <= start

    def test_discarded_tree_recomputed_correctly(self, medium_er):
        """Rebuilding a discarded tree must not corrupt work accounting."""
        s, t = random_reachable_pair(medium_er, seed=47)
        algo = PSBv2KSP(medium_er, s, t, threshold=1.0)  # caches almost nothing
        res = algo.run(8)
        ref = yen_ksp(medium_er, s, t, 8)
        assert np.allclose(res.distances, ref.distances)
        assert algo.stats.edges_relaxed >= 0


class TestRegistry:
    def test_psb_in_registry(self, fan_graph):
        from repro.ksp import make_algorithm

        for name in ("PSB", "PSB-v2", "PSB-v3"):
            res = make_algorithm(name, fan_graph, 0, 4).run(2)
            assert res.distances == pytest.approx([2.0, 4.0])
