"""Unit tests for OptYen."""

import numpy as np
import pytest

from repro.errors import UnreachableTargetError
from repro.graph.build import from_edge_list
from repro.graph.generators import erdos_renyi
from repro.ksp.optyen import OptYenKSP, optyen_ksp
from repro.ksp.yen import yen_ksp
from tests.conftest import nx_k_shortest_distances, random_reachable_pair


class TestCorrectness:
    def test_fan_graph(self, fan_graph):
        res = optyen_ksp(fan_graph, 0, 4, 4)
        assert res.distances == pytest.approx([2.0, 4.0, 6.0, 20.0])

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_yen(self, seed):
        g = erdos_renyi(40, 3.0, seed=seed + 60)
        s, t = random_reachable_pair(g, seed=seed)
        assert np.allclose(
            optyen_ksp(g, s, t, 8).distances, yen_ksp(g, s, t, 8).distances
        )

    def test_matches_networkx_on_grid(self, small_grid):
        ref = nx_k_shortest_distances(small_grid, 0, 63, 8)
        assert np.allclose(optyen_ksp(small_grid, 0, 63, 8).distances, ref)

    def test_unreachable(self):
        g = from_edge_list(3, [(0, 1, 1.0)])
        with pytest.raises(UnreachableTargetError):
            optyen_ksp(g, 0, 2, 1)


class TestExpressPath:
    def test_first_path_needs_one_sssp_only(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=1)
        algo = OptYenKSP(medium_er, s, t)
        algo.run(1)
        # the single reverse tree answers K=1 with no forward SSSP
        assert algo.stats.sssp_calls == 1

    def test_express_hits_recorded(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=1)
        algo = OptYenKSP(medium_er, s, t)
        algo.run(8)
        assert algo.stats.express_hits > 0

    def test_fewer_sssp_than_yen(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=4)
        opt = OptYenKSP(medium_er, s, t)
        opt.run(10)
        from repro.ksp.yen import YenKSP

        plain = YenKSP(medium_er, s, t)
        plain.run(10)
        assert opt.stats.sssp_calls < plain.stats.sssp_calls


class TestInternals:
    def test_best_first_hop_respects_bans(self, fan_graph):
        algo = OptYenKSP(fan_graph, 0, 4)
        algo._prepare()
        hop = algo._best_first_hop(0, frozenset(), frozenset())
        assert hop == (1, pytest.approx(2.0))
        hop2 = algo._best_first_hop(0, frozenset({1}), frozenset())
        assert hop2 == (2, pytest.approx(4.0))
        hop3 = algo._best_first_hop(0, frozenset(), frozenset({(0, 1), (0, 2)}))
        assert hop3 == (3, pytest.approx(6.0))

    def test_no_allowed_hop(self, fan_graph):
        algo = OptYenKSP(fan_graph, 0, 4)
        algo._prepare()
        assert (
            algo._best_first_hop(
                0, frozenset({1, 2, 3, 5}), frozenset()
            )
            is None
        )

    def test_tree_suffix_detects_banned(self, fan_graph):
        algo = OptYenKSP(fan_graph, 0, 4)
        algo._prepare()
        assert algo._tree_suffix(0, 1, frozenset()) == (0, 1, 4)
        assert algo._tree_suffix(0, 1, frozenset({4})) is None
