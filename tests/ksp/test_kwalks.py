"""Unit and property tests for the K-shortest-walks extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import VertexError
from repro.graph.build import from_edge_array, from_edge_list
from repro.ksp.kwalks import k_shortest_walks
from repro.ksp.yen import yen_ksp
from repro.sssp.dijkstra import dijkstra


class TestBasics:
    def test_fan_graph_walks_equal_paths(self, fan_graph):
        # the fan graph is a DAG of disjoint corridors: walks == simple paths
        walks = k_shortest_walks(fan_graph, 0, 4, 4)
        assert walks.distances == pytest.approx([2.0, 4.0, 6.0, 20.0])
        assert all(p.is_simple() for p in walks.paths)

    def test_cycle_produces_non_simple_walks(self):
        # s -> a -> t with a cycle a -> b -> a
        g = from_edge_list(
            4,
            [(0, 1, 1.0), (1, 3, 1.0), (1, 2, 0.5), (2, 1, 0.5)],
        )
        walks = k_shortest_walks(g, 0, 3, 3)
        assert walks.distances == pytest.approx([2.0, 3.0, 4.0])
        assert not walks.paths[1].is_simple()

    def test_first_walk_is_shortest_path(self, medium_er):
        from tests.conftest import random_reachable_pair

        s, t = random_reachable_pair(medium_er, seed=14)
        walks = k_shortest_walks(medium_er, s, t, 1)
        assert walks.distances[0] == pytest.approx(
            float(dijkstra(medium_er, s, target=t).dist[t])
        )

    def test_bad_args(self, fan_graph):
        with pytest.raises(VertexError):
            k_shortest_walks(fan_graph, 99, 4, 1)
        with pytest.raises(ValueError):
            k_shortest_walks(fan_graph, 0, 4, 0)

    def test_max_hops_limits_enumeration(self):
        g = from_edge_list(2, [(0, 1, 1.0), (1, 0, 1.0)])
        walks = k_shortest_walks(g, 0, 1, 5, max_hops=3)
        # only hops 1 and 3 walks fit under the cap
        assert len(walks.paths) == 2


@given(st.integers(0, 2**31 - 1), st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_walks_lower_bound_simple_paths(seed, k):
    """The i-th shortest walk never exceeds the i-th shortest simple path."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 20))
    m = int(rng.integers(n, 4 * n))
    g = from_edge_array(
        n,
        rng.integers(0, n, size=m),
        rng.integers(0, n, size=m),
        rng.random(m) + 0.05,
    )
    s = 0
    reach = np.flatnonzero(np.isfinite(dijkstra(g, s).dist))
    reach = reach[reach != s]
    if reach.size == 0:
        return
    t = int(reach[0])
    simple = yen_ksp(g, s, t, k).distances
    walks = k_shortest_walks(g, s, t, k).distances
    assert walks == sorted(walks)
    for i in range(min(len(simple), len(walks))):
        assert walks[i] <= simple[i] + 1e-9
