"""Deadline semantics across every algorithm (the paper's 1-hour cap)."""

import time

import pytest

from repro.ksp import ALGORITHMS, make_algorithm
from repro.ksp.base import KSPTimeout


@pytest.mark.parametrize("method", sorted(ALGORITHMS))
def test_expired_deadline_raises(medium_er, method):
    from tests.conftest import random_reachable_pair

    s, t = random_reachable_pair(medium_er, seed=9)
    algo = make_algorithm(
        method, medium_er, s, t, deadline=time.perf_counter() - 1.0
    )
    with pytest.raises(KSPTimeout):
        algo.run(64)


@pytest.mark.parametrize("method", ["Yen", "OptYen", "PeeK", "SB*"])
def test_generous_deadline_is_harmless(medium_er, method):
    from tests.conftest import random_reachable_pair

    s, t = random_reachable_pair(medium_er, seed=9)
    algo = make_algorithm(
        method, medium_er, s, t, deadline=time.perf_counter() + 3600
    )
    res = algo.run(5)
    assert len(res.paths) == 5


def test_timeout_is_catchable_as_ksp_error(medium_er):
    from repro.errors import KSPError
    from tests.conftest import random_reachable_pair

    s, t = random_reachable_pair(medium_er, seed=9)
    algo = make_algorithm(
        "Yen", medium_er, s, t, deadline=time.perf_counter() - 1.0
    )
    with pytest.raises(KSPError):
        algo.run(64)
