"""Unit tests for the postponed-NC (PNC) extension."""

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi, grid_network
from repro.ksp.pnc import PostponedNCKSP, pnc_ksp
from repro.ksp.yen import yen_ksp
from tests.conftest import nx_k_shortest_distances, random_reachable_pair


class TestCorrectness:
    def test_fan_graph(self, fan_graph):
        assert pnc_ksp(fan_graph, 0, 4, 4).distances == pytest.approx(
            [2.0, 4.0, 6.0, 20.0]
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_yen(self, seed):
        g = erdos_renyi(40, 3.0, seed=seed + 120)
        s, t = random_reachable_pair(g, seed=seed)
        assert np.allclose(
            pnc_ksp(g, s, t, 9).distances, yen_ksp(g, s, t, 9).distances
        )

    def test_matches_networkx_grid(self):
        g = grid_network(6, 6, seed=7)
        ref = nx_k_shortest_distances(g, 0, 35, 10)
        assert np.allclose(pnc_ksp(g, 0, 35, 10).distances, ref)


class TestPostponement:
    def test_repairs_only_on_extraction(self, medium_er):
        """PNC should repair at most as many candidates as Yen-style code
        would have run SSSPs eagerly for the same dirty deviations."""
        s, t = random_reachable_pair(medium_er, seed=8)
        from repro.ksp.optyen import OptYenKSP

        eager = OptYenKSP(medium_er, s, t)
        eager.run(10)
        lazy = PostponedNCKSP(medium_er, s, t)
        lazy.run(10)
        # every eager fallback SSSP was a dirty express path; PNC repairs a
        # subset of those (only the extracted ones)
        assert lazy.stats.repairs <= max(eager.stats.sssp_calls, 1)

    def test_results_never_contain_placeholder(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=8)
        res = pnc_ksp(medium_er, s, t, 10)
        for p in res.paths:
            assert p.is_simple()
