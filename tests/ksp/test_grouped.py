"""Unit tests for the SHORTEST k GROUP variant."""

import pytest

from repro.graph.build import from_edge_list
from repro.graph.generators import grid_network
from repro.ksp.grouped import PathGroup, shortest_k_groups
from repro.ksp.yen import YenKSP


@pytest.fixture
def tie_graph():
    """Two length-2 paths, one length-3 path, one length-5 path."""
    return from_edge_list(
        5,
        [
            (0, 1, 1.0), (1, 4, 1.0),   # 2.0
            (0, 2, 1.0), (2, 4, 1.0),   # 2.0
            (0, 3, 1.5), (3, 4, 1.5),   # 3.0
            (0, 4, 5.0),                 # 5.0
        ],
    )


class TestGrouping:
    def test_groups_by_distance(self, tie_graph):
        groups = shortest_k_groups(YenKSP(tie_graph, 0, 4), 3)
        assert [g.distance for g in groups] == pytest.approx([2.0, 3.0, 5.0])
        assert len(groups[0]) == 2
        assert len(groups[1]) == 1
        assert len(groups[2]) == 1

    def test_k_limits_group_count(self, tie_graph):
        groups = shortest_k_groups(YenKSP(tie_graph, 0, 4), 1)
        assert len(groups) == 1
        assert len(groups[0]) == 2  # the whole first group is returned

    def test_fewer_groups_than_k(self, tie_graph):
        groups = shortest_k_groups(YenKSP(tie_graph, 0, 4), 10)
        assert len(groups) == 3

    def test_bad_k(self, tie_graph):
        with pytest.raises(ValueError):
            shortest_k_groups(YenKSP(tie_graph, 0, 4), 0)

    def test_max_paths_cap(self):
        # unit-weight grid: exponentially many equal-length paths
        g = grid_network(4, 4, weight_scheme="unit", seed=0)
        groups = shortest_k_groups(YenKSP(g, 0, 15), 1, max_paths=5)
        assert sum(len(gr) for gr in groups) == 5

    def test_float_tolerance_groups_accumulated_sums(self):
        # 0.1+0.2 != 0.3 exactly; the tolerance must still group them
        g = from_edge_list(
            4,
            [
                (0, 1, 0.1), (1, 3, 0.2),
                (0, 2, 0.3000000000000001), (2, 3, 1e-9),
            ],
        )
        # distances 0.30000000000000004 vs 0.300000001 — distinct groups at
        # rel_tol 1e-12 but one group at a coarse tolerance
        fine = shortest_k_groups(YenKSP(g, 0, 3), 2, rel_tol=1e-13)
        coarse = shortest_k_groups(YenKSP(g, 0, 3), 2, rel_tol=1e-6)
        assert len(fine) == 2
        assert len(coarse[0]) == 2


class TestWithPeeK:
    def test_peek_serves_group_queries(self, tie_graph):
        from repro.core.peek import PeeK

        algo = PeeK(tie_graph, 0, 4)
        algo.prepare(4)
        groups = shortest_k_groups(algo, 2)
        assert [g.distance for g in groups] == pytest.approx([2.0, 3.0])

    def test_pathgroup_len(self):
        g = PathGroup(distance=1.0)
        assert len(g) == 0
