"""Hypothesis property tests: every KSP algorithm matches networkx.

This is the library's strongest correctness statement: on arbitrary random
digraphs, all seven algorithms (five baselines, PNC, and PeeK) return
exactly the distance sequence of ``networkx.shortest_simple_paths``.
"""

import itertools

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.peek import PeeK
from repro.graph.build import from_edge_array, to_networkx
from repro.ksp.node_classification import NodeClassificationKSP
from repro.ksp.optyen import OptYenKSP
from repro.ksp.pnc import PostponedNCKSP
from repro.ksp.sidetrack import SidetrackKSP
from repro.ksp.sidetrack_star import SidetrackStarKSP
from repro.ksp.yen import YenKSP
from repro.sssp.dijkstra import dijkstra

ALGOS = (
    YenKSP,
    OptYenKSP,
    NodeClassificationKSP,
    SidetrackKSP,
    SidetrackStarKSP,
    PostponedNCKSP,
    PeeK,
)


@st.composite
def ksp_cases(draw):
    """A random digraph with a guaranteed-reachable (s, t) pair and a K."""
    n = draw(st.integers(min_value=3, max_value=16))
    m = draw(st.integers(min_value=n, max_value=4 * n))
    rng_seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(rng_seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    # weights from a small set of floats encourages near-ties
    weights = rng.choice([0.5, 1.0, 1.25, 2.0, 3.75], size=m)
    g = from_edge_array(n, src, dst, weights)
    s = draw(st.integers(0, n - 1))
    res = dijkstra(g, s)
    reach = np.flatnonzero(np.isfinite(res.dist))
    reach = reach[reach != s]
    if reach.size == 0:
        # force reachability with one extra edge
        t = (s + 1) % n
        g = from_edge_array(
            n,
            np.append(src, s),
            np.append(dst, t),
            np.append(weights, 1.0),
        )
    else:
        t = int(reach[draw(st.integers(0, reach.size - 1))])
    k = draw(st.integers(min_value=1, max_value=9))
    return g, int(s), int(t), k


def reference_distances(g, s, t, k):
    nxg = to_networkx(g)
    out = []
    for p in itertools.islice(
        nx.shortest_simple_paths(nxg, s, t, weight="weight"), k
    ):
        out.append(sum(nxg[a][b]["weight"] for a, b in zip(p[:-1], p[1:])))
    return out


@given(ksp_cases())
@settings(max_examples=40, deadline=None)
def test_all_algorithms_match_networkx(case):
    g, s, t, k = case
    ref = reference_distances(g, s, t, k)
    for cls in ALGOS:
        got = cls(g, s, t).run(k).distances
        assert len(got) == len(ref), cls.name
        assert np.allclose(got, ref), (cls.name, got, ref)


@given(ksp_cases())
@settings(max_examples=30, deadline=None)
def test_paths_are_simple_and_well_formed(case):
    g, s, t, k = case
    for cls in (YenKSP, OptYenKSP, PeeK):
        res = cls(g, s, t).run(k)
        for p in res.paths:
            assert p.is_simple()
            assert p.source == s and p.target == t
            # the claimed distance matches the claimed edges
            from repro.paths import path_distance

            assert abs(path_distance(p.vertices, g) - p.distance) < 1e-6


@given(ksp_cases())
@settings(max_examples=30, deadline=None)
def test_distances_non_decreasing(case):
    g, s, t, k = case
    for cls in (OptYenKSP, SidetrackStarKSP, PeeK):
        d = cls(g, s, t).run(k).distances
        assert all(a <= b + 1e-12 for a, b in zip(d, d[1:])), cls.name
