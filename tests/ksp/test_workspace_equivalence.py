"""Every KSP algorithm must return identical results with the workspace on.

The epoch-stamped SSSP workspace is a pure constant-factor optimisation:
``use_workspace=True`` (the default) and ``use_workspace=False`` (the
historical fresh-allocation spur searches) must produce the same ranked path
sets, distances, and — because the relaxation order is unchanged — the same
work counters, on every algorithm and every graph shape.
"""

import pytest

from repro.core.peek import PeeK
from repro.graph.generators import erdos_renyi, grid_network
from repro.ksp.node_classification import NodeClassificationKSP
from repro.ksp.optyen import OptYenKSP
from repro.ksp.pnc import PostponedNCKSP
from repro.ksp.psb import PSBKSP
from repro.ksp.sidetrack import SidetrackKSP
from repro.ksp.sidetrack_star import SidetrackStarKSP
from repro.ksp.yen import YenKSP

ALGOS = [
    YenKSP,
    OptYenKSP,
    NodeClassificationKSP,
    SidetrackKSP,
    SidetrackStarKSP,
    PostponedNCKSP,
    PSBKSP,
]


def _paths_of(result):
    return [(p.distance, p.vertices) for p in result.paths]


def _run_both(cls, graph, source, target, k):
    base = cls(graph, source, target, use_workspace=False).run(k)
    ws = cls(graph, source, target, use_workspace=True).run(k)
    return base, ws


@pytest.mark.parametrize("cls", ALGOS, ids=[c.name for c in ALGOS])
class TestAlgorithmEquivalence:
    def test_fan_graph(self, cls, fan_graph):
        base, ws = _run_both(cls, fan_graph, 0, 5, 4)
        assert _paths_of(ws) == _paths_of(base)

    def test_loop_trap(self, cls, loop_trap_graph):
        base, ws = _run_both(cls, loop_trap_graph, 0, 4, 3)
        assert _paths_of(ws) == _paths_of(base)

    def test_random_graphs(self, cls):
        for seed in (1, 2, 3):
            g = erdos_renyi(70, 4.0, seed=seed)
            base, ws = _run_both(cls, g, 0, g.num_vertices - 1, 6)
            assert _paths_of(ws) == _paths_of(base), f"seed={seed}"

    def test_grid(self, cls):
        g = grid_network(7, 7, seed=4)
        base, ws = _run_both(cls, g, 0, g.num_vertices - 1, 8)
        assert _paths_of(ws) == _paths_of(base)

    def test_work_counters_identical(self, cls):
        """The workspace changes allocation, not the search: same counters."""
        g = erdos_renyi(50, 4.0, seed=6)
        base, ws = _run_both(cls, g, 0, g.num_vertices - 1, 5)
        assert ws.stats.edges_relaxed == base.stats.edges_relaxed
        assert ws.stats.sssp_calls == base.stats.sssp_calls


class TestPeeKEquivalence:
    def test_peek_matches_without_workspace(self):
        for seed in (1, 5):
            g = erdos_renyi(80, 5.0, seed=seed)
            base = PeeK(g, 0, g.num_vertices - 1, use_workspace=False).run(5)
            ws = PeeK(g, 0, g.num_vertices - 1, use_workspace=True).run(5)
            assert _paths_of(ws) == _paths_of(base)

    def test_peek_matches_plain_yen(self):
        g = grid_network(6, 6, seed=2)
        t = g.num_vertices - 1
        yen = YenKSP(g, 0, t).run(6)
        peek = PeeK(g, 0, t).run(6)
        assert [p.distance for p in peek.paths] == pytest.approx(
            [p.distance for p in yen.paths]
        )


class TestSolverWorkspaceLifecycle:
    def test_workspace_created_lazily_and_reused(self):
        g = erdos_renyi(40, 4.0, seed=8)
        solver = YenKSP(g, 0, g.num_vertices - 1)
        assert solver._workspace is None
        solver.run(4)
        ws = solver._workspace
        assert ws is not None and ws.epoch > 1  # many spur searches, one workspace

    def test_use_workspace_false_never_allocates(self):
        g = erdos_renyi(40, 4.0, seed=8)
        solver = YenKSP(g, 0, g.num_vertices - 1, use_workspace=False)
        solver.run(4)
        assert solver._workspace is None
