"""Unit tests for Yen's algorithm (and the deviation framework it drives)."""

import numpy as np
import pytest

from repro.errors import KSPError, UnreachableTargetError, VertexError
from repro.graph.build import from_edge_list
from repro.ksp.yen import YenKSP, yen_ksp
from tests.conftest import nx_k_shortest_distances


class TestFanGraph:
    def test_known_distances(self, fan_graph):
        res = yen_ksp(fan_graph, 0, 4, 4)
        assert res.distances == pytest.approx([2.0, 4.0, 6.0, 20.0])

    def test_paths_are_simple(self, fan_graph):
        res = yen_ksp(fan_graph, 0, 4, 4)
        assert all(p.is_simple() for p in res.paths)

    def test_paths_start_and_end_correctly(self, fan_graph):
        res = yen_ksp(fan_graph, 0, 4, 3)
        for p in res.paths:
            assert p.source == 0
            assert p.target == 4

    def test_exhaustion_returns_fewer(self, fan_graph):
        res = yen_ksp(fan_graph, 0, 4, 10)
        assert len(res.paths) == 4  # only 4 simple paths exist
        assert res.k_requested == 10

    def test_k_one_is_shortest_path(self, fan_graph):
        res = yen_ksp(fan_graph, 0, 4, 1)
        assert res.paths[0].vertices == (0, 1, 4)


class TestEdgeCases:
    def test_unreachable_target(self):
        g = from_edge_list(3, [(0, 1, 1.0)])
        with pytest.raises(UnreachableTargetError):
            yen_ksp(g, 0, 2, 2)

    def test_source_equals_target(self, fan_graph):
        with pytest.raises(KSPError):
            yen_ksp(fan_graph, 0, 0, 1)

    def test_bad_vertices(self, fan_graph):
        with pytest.raises(VertexError):
            yen_ksp(fan_graph, 0, 77, 1)
        with pytest.raises(VertexError):
            yen_ksp(fan_graph, -1, 4, 1)

    def test_bad_k(self, fan_graph):
        with pytest.raises(ValueError):
            yen_ksp(fan_graph, 0, 4, 0)

    def test_two_vertex_graph(self):
        g = from_edge_list(2, [(0, 1, 3.0)])
        res = yen_ksp(g, 0, 1, 5)
        assert res.distances == [3.0]

    def test_parallel_edges_deduped_at_build(self):
        g = from_edge_list(2, [(0, 1, 3.0), (0, 1, 1.0)])
        res = yen_ksp(g, 0, 1, 5)
        # dedup keeps only the lightest copy: a single path remains
        assert res.distances == [1.0]


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, seed):
        from repro.graph.generators import erdos_renyi
        from tests.conftest import random_reachable_pair

        g = erdos_renyi(35, 3.0, seed=seed + 40)
        s, t = random_reachable_pair(g, seed=seed)
        ref = nx_k_shortest_distances(g, s, t, 7)
        got = yen_ksp(g, s, t, 7).distances
        assert np.allclose(got, ref)

    def test_grid(self, small_grid):
        ref = nx_k_shortest_distances(small_grid, 0, 63, 6)
        got = yen_ksp(small_grid, 0, 63, 6).distances
        assert np.allclose(got, ref)


class TestLawler:
    def test_lawler_same_results(self, medium_er):
        from tests.conftest import random_reachable_pair

        s, t = random_reachable_pair(medium_er, seed=2)
        plain = YenKSP(medium_er, s, t, lawler=False).run(8)
        fast = YenKSP(medium_er, s, t, lawler=True).run(8)
        assert np.allclose(plain.distances, fast.distances)

    def test_lawler_fewer_sssp_calls(self, medium_er):
        from tests.conftest import random_reachable_pair

        s, t = random_reachable_pair(medium_er, seed=2)
        plain = YenKSP(medium_er, s, t, lawler=False)
        plain.run(8)
        fast = YenKSP(medium_er, s, t, lawler=True)
        fast.run(8)
        assert fast.stats.sssp_calls <= plain.stats.sssp_calls


class TestStats:
    def test_stats_populated(self, fan_graph):
        res = yen_ksp(fan_graph, 0, 4, 3)
        st = res.stats
        assert st.sssp_calls >= 1
        assert st.candidates_generated >= 2
        assert len(st.iteration_tasks) >= 1
        assert st.total_work > 0

    def test_result_coverage_helpers(self, fan_graph):
        res = yen_ksp(fan_graph, 0, 4, 2)
        assert res.covered_vertices() == {0, 1, 2, 4}
        assert (0, 1) in res.covered_edges()


class TestDeadline:
    def test_deadline_raises(self, medium_er):
        import time

        from repro.ksp.base import KSPTimeout
        from tests.conftest import random_reachable_pair

        s, t = random_reachable_pair(medium_er, seed=3)
        algo = YenKSP(medium_er, s, t, deadline=time.perf_counter() - 1.0)
        with pytest.raises(KSPTimeout):
            algo.run(50)
