"""Unit tests for the NC algorithm."""

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi
from repro.ksp.node_classification import NodeClassificationKSP, nc_ksp
from repro.ksp.yen import yen_ksp
from tests.conftest import nx_k_shortest_distances, random_reachable_pair


class TestCorrectness:
    def test_fan_graph(self, fan_graph):
        res = nc_ksp(fan_graph, 0, 4, 4)
        assert res.distances == pytest.approx([2.0, 4.0, 6.0, 20.0])

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_yen(self, seed):
        g = erdos_renyi(40, 3.0, seed=seed + 80)
        s, t = random_reachable_pair(g, seed=seed)
        assert np.allclose(
            nc_ksp(g, s, t, 8).distances, yen_ksp(g, s, t, 8).distances
        )

    def test_matches_networkx(self, small_grid):
        ref = nx_k_shortest_distances(small_grid, 0, 45, 6)
        assert np.allclose(nc_ksp(small_grid, 0, 45, 6).distances, ref)


class TestColouring:
    def test_green_mask_basic(self, fan_graph):
        algo = NodeClassificationKSP(fan_graph, 0, 4)
        algo._prepare()
        algo._iteration_tasks = []
        algo._iteration_serial = 0
        green = algo._green_mask(frozenset())
        # everything that can reach t is green with no red vertices
        assert green[4] and green[1] and green[2] and green[3]

    def test_red_vertex_blocks_subtree(self, fan_graph):
        algo = NodeClassificationKSP(fan_graph, 0, 4)
        algo._prepare()
        algo._iteration_tasks = []
        algo._iteration_serial = 0
        green = algo._green_mask(frozenset({4}))
        # t itself red: nothing is green
        assert not green.any()

    def test_colour_work_charged_as_serial(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=6)
        algo = NodeClassificationKSP(medium_er, s, t)
        algo.run(4)
        assert any(w > 0 for w in algo.stats.iteration_serial)


class TestOverheadProfile:
    def test_tree_refreshed_each_iteration(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=7)
        algo = NodeClassificationKSP(medium_er, s, t)
        k = 5
        algo.run(k)
        # one reverse SSSP at prepare + one per accepted path after the first
        assert algo.stats.sssp_calls >= k - 1
