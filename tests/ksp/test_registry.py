"""Unit tests for the algorithm registry."""

import numpy as np
import pytest

from repro.ksp.registry import ALGORITHMS, make_algorithm


def test_registry_has_paper_names():
    for name in ("Yen", "NC", "OptYen", "SB", "SB*", "PeeK", "PNC"):
        assert name in ALGORITHMS


def test_make_algorithm_runs(fan_graph):
    for name in ALGORITHMS:
        algo = make_algorithm(name, fan_graph, 0, 4)
        res = algo.run(3)
        assert res.distances == pytest.approx([2.0, 4.0, 6.0])


def test_unknown_name(fan_graph):
    with pytest.raises(KeyError, match="unknown algorithm"):
        make_algorithm("Dijkstra++", fan_graph, 0, 4)


def test_all_algorithms_agree(medium_er):
    from tests.conftest import random_reachable_pair

    s, t = random_reachable_pair(medium_er, seed=42)
    results = {
        name: make_algorithm(name, medium_er, s, t).run(6).distances
        for name in ALGORITHMS
    }
    base = results["Yen"]
    for name, got in results.items():
        assert np.allclose(got, base), name
