"""Focused tests for NC's yellow-region SSSP with green exits."""

import numpy as np
import pytest

from repro.graph.build import from_edge_list
from repro.graph.generators import erdos_renyi, grid_network
from repro.ksp.node_classification import NodeClassificationKSP
from repro.ksp.yen import yen_ksp
from tests.conftest import random_reachable_pair


class TestYellowSearch:
    def test_exhausted_when_no_red_free_route(self):
        # s→a→t only; deviating at s with edge (s,a) banned: a is the cut
        g = from_edge_list(3, [(0, 1, 1.0), (1, 2, 1.0)])
        algo = NodeClassificationKSP(g, 0, 2)
        algo._prepare()
        algo._iteration_tasks = []
        algo._iteration_serial = 0
        green = algo._green_mask(frozenset())
        status, found = algo._yellow_sssp(
            0, frozenset(), frozenset({(0, 1)}), green
        )
        assert status == "exhausted"
        assert found is None

    def test_found_returns_exact_suffix(self, fan_graph):
        algo = NodeClassificationKSP(fan_graph, 0, 4)
        algo._prepare()
        algo._iteration_tasks = []
        algo._iteration_serial = 0
        green = algo._green_mask(frozenset())
        status, found = algo._yellow_sssp(
            0, frozenset(), frozenset({(0, 1)}), green
        )
        assert status == "found"
        dist, verts, exact = found
        assert dist == pytest.approx(4.0)  # next-best corridor via b
        assert verts[0] == 0 and verts[-1] == 4
        assert exact

    def test_early_exit_settles_less_than_full_search(self):
        g = grid_network(10, 10, seed=5)
        algo = NodeClassificationKSP(g, 0, 99)
        algo._prepare()
        algo._iteration_tasks = []
        algo._iteration_serial = 0
        green = algo._green_mask(frozenset())
        before = algo.stats.vertices_settled
        status, _ = algo._yellow_sssp(0, frozenset(), frozenset({(0, 1)}), green)
        settled = algo.stats.vertices_settled - before
        assert status == "found"
        # with everything green, the search closes at the first exits —
        # far fewer settles than the 100-vertex graph
        assert settled < 50


class TestEndToEnd:
    @pytest.mark.parametrize("seed", range(6))
    def test_agreement_on_denser_graphs(self, seed):
        """Denser graphs exercise the yellow/green interplay harder."""
        g = erdos_renyi(50, 6.0, seed=seed + 400)
        s, t = random_reachable_pair(g, seed=seed)
        got = NodeClassificationKSP(g, s, t).run(10).distances
        ref = yen_ksp(g, s, t, 10).distances
        assert np.allclose(got, ref)

    def test_unit_weights_heavy_ties(self):
        g = grid_network(5, 5, weight_scheme="unit", seed=1)
        got = NodeClassificationKSP(g, 0, 24).run(12).distances
        ref = yen_ksp(g, 0, 24, 12).distances
        assert np.allclose(got, ref)
