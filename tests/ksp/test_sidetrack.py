"""Unit tests for the sidetrack-based algorithms (SB and SB*)."""

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi
from repro.ksp.sidetrack import SidetrackKSP, sb_ksp
from repro.ksp.sidetrack_star import SidetrackStarKSP, sb_star_ksp
from repro.ksp.yen import yen_ksp
from tests.conftest import nx_k_shortest_distances, random_reachable_pair


class TestCorrectness:
    def test_fan_graph_sb(self, fan_graph):
        assert sb_ksp(fan_graph, 0, 4, 4).distances == pytest.approx(
            [2.0, 4.0, 6.0, 20.0]
        )

    def test_fan_graph_sb_star(self, fan_graph):
        assert sb_star_ksp(fan_graph, 0, 4, 4).distances == pytest.approx(
            [2.0, 4.0, 6.0, 20.0]
        )

    @pytest.mark.parametrize("cls", [SidetrackKSP, SidetrackStarKSP])
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_yen(self, cls, seed):
        g = erdos_renyi(40, 3.0, seed=seed + 100)
        s, t = random_reachable_pair(g, seed=seed)
        got = cls(g, s, t).run(8).distances
        assert np.allclose(got, yen_ksp(g, s, t, 8).distances)

    def test_matches_networkx(self, small_grid):
        ref = nx_k_shortest_distances(small_grid, 0, 63, 8)
        assert np.allclose(sb_ksp(small_grid, 0, 63, 8).distances, ref)
        assert np.allclose(sb_star_ksp(small_grid, 0, 63, 8).distances, ref)


class TestTreeReuse:
    def test_trees_cached_per_removal_set(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=9)
        algo = SidetrackKSP(medium_er, s, t)
        algo.run(6)
        # far fewer trees than deviation searches: prefixes repeat
        searches = sum(len(ts) for ts in algo.stats.iteration_tasks)
        assert len(algo._trees) <= searches

    def test_sb_star_settles_less(self, medium_er):
        """The resumable trees should do less SSSP work than full trees."""
        s, t = random_reachable_pair(medium_er, seed=9)
        eager = SidetrackKSP(medium_er, s, t)
        eager.run(8)
        lazy = SidetrackStarKSP(medium_er, s, t)
        lazy.run(8)
        eager_settled = sum(
            tr.stats.vertices_settled for tr in eager._trees.values()
        )
        lazy_settled = sum(
            tr.stats.vertices_settled for tr in lazy._trees.values()
        )
        assert lazy_settled <= eager_settled

    def test_memory_tracked(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=9)
        algo = SidetrackKSP(medium_er, s, t)
        algo.run(6)
        assert algo.stats.peak_tree_bytes > 0

    def test_sb_memory_grows_with_k(self, medium_er):
        """The paper's 'obvious memory issue': more paths, more trees."""
        s, t = random_reachable_pair(medium_er, seed=5)
        small = SidetrackKSP(medium_er, s, t)
        small.run(2)
        big = SidetrackKSP(medium_er, s, t)
        big.run(12)
        assert big.stats.peak_tree_bytes >= small.stats.peak_tree_bytes


class TestExpressBehaviour:
    def test_mostly_express(self, medium_er):
        s, t = random_reachable_pair(medium_er, seed=3)
        algo = SidetrackStarKSP(medium_er, s, t)
        algo.run(8)
        assert algo.stats.express_hits > algo.stats.repairs
