"""Unit tests for the shared deviation framework internals."""

import pytest

from repro.ksp.base import Candidate, KSPResult, KSPStats
from repro.ksp.yen import YenKSP
from repro.paths import Path


class TestCandidateOrdering:
    def test_by_distance_first(self):
        a = Candidate(distance=1.0, vertices=(0, 9), deviation_index=0)
        b = Candidate(distance=2.0, vertices=(0, 1), deviation_index=0)
        assert a < b

    def test_vertex_tiebreak(self):
        a = Candidate(distance=1.0, vertices=(0, 1), deviation_index=0)
        b = Candidate(distance=1.0, vertices=(0, 2), deviation_index=0)
        assert a < b

    def test_flags_do_not_affect_order(self):
        a = Candidate(distance=1.0, vertices=(0, 1), deviation_index=5, exact=False)
        b = Candidate(distance=1.0, vertices=(0, 1), deviation_index=1, exact=True)
        assert not a < b and not b < a


class TestKSPStats:
    def test_add_sssp_folds_counters(self):
        from repro.sssp.result import SSSPStats

        st = KSPStats()
        work = st.add_sssp(SSSPStats(edges_relaxed=10, vertices_settled=4))
        assert work == 14
        assert st.sssp_calls == 1
        assert st.total_work == 14


class TestKSPResult:
    def test_distances_property(self):
        res = KSPResult(
            paths=[Path(1.0, (0, 1)), Path(2.0, (0, 2, 1))], k_requested=2
        )
        assert res.distances == [1.0, 2.0]

    def test_coverage(self):
        res = KSPResult(paths=[Path(1.0, (0, 1)), Path(2.0, (0, 2, 1))], k_requested=2)
        assert res.covered_vertices() == {0, 1, 2}
        assert res.covered_edges() == {(0, 1), (0, 2), (2, 1)}

    def test_empty_result(self):
        res = KSPResult(paths=[], k_requested=3)
        assert res.distances == []
        assert res.covered_vertices() == set()


class TestDeviationEdges:
    def test_edges_banned_only_for_matching_prefix(self, fan_graph):
        algo = YenKSP(fan_graph, 0, 4)
        accepted = [
            (Path(2.0, (0, 1, 4)), 0),
            (Path(4.0, (0, 2, 4)), 0),
        ]
        banned = algo._deviation_edges(accepted, (0,))
        assert banned == {(0, 1), (0, 2)}
        # a prefix that matches only the first path
        banned = algo._deviation_edges(accepted, (0, 1))
        assert banned == {(1, 4)}
        # a prefix matching nothing
        banned = algo._deviation_edges(accepted, (0, 3))
        assert banned == frozenset()


class TestIterPaths:
    def test_generator_is_lazy(self, medium_er):
        from tests.conftest import random_reachable_pair

        s, t = random_reachable_pair(medium_er, seed=30)
        algo = YenKSP(medium_er, s, t)
        gen = algo.iter_paths()
        first = next(gen)
        sssp_after_first = algo.stats.sssp_calls
        next(gen)
        assert algo.stats.sssp_calls > sssp_after_first

    def test_run_twice_needs_fresh_instance(self, fan_graph):
        algo = YenKSP(fan_graph, 0, 4)
        r1 = algo.run(2)
        # a second run on the same instance reuses consumed state; the
        # documented contract is one run per instance
        fresh = YenKSP(fan_graph, 0, 4).run(2)
        assert r1.distances == fresh.distances
