"""Unit tests for the span/tracer substrate (repro.obs)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import (
    NOOP_TRACER,
    NULL_SPAN,
    NoOpTracer,
    Span,
    Tracer,
    get_tracer,
    load_spans,
    read_jsonl,
    render_counters,
    render_tree,
    set_tracer,
    traced,
    use_tracer,
    write_jsonl,
)


def test_span_nesting_records_parent_ids():
    tr = Tracer()
    with tr.span("outer") as outer:
        with tr.span("inner") as inner:
            pass
    assert outer.parent_id is None
    assert inner.parent_id == outer.span_id
    # children complete first
    assert [s.name for s in tr.spans] == ["inner", "outer"]
    assert all(s.duration >= 0 for s in tr.spans)


def test_counters_attach_to_active_span():
    tr = Tracer()
    with tr.span("work") as span:
        tr.add("edges", 10)
        tr.add("edges", 5)
        span.add("direct")
    assert span.counters == {"edges": 15, "direct": 1}
    assert tr.total("edges") == 15


def test_gauges_and_histograms():
    tr = Tracer()
    with tr.span("work") as span:
        span.set_gauge("epochs", 3)
        span.set_gauge("epochs", 7)  # last write wins
        for v in (2.0, 9.0, 4.0):
            span.observe("task_size", v)
    assert span.gauges == {"epochs": 7.0}
    count, total, lo, hi = span.hists["task_size"]
    assert (count, total, lo, hi) == (3, 15.0, 2.0, 9.0)


def test_orphan_counters_not_lost():
    tr = Tracer()
    tr.add("stray", 2)
    with tr.span("work"):
        tr.add("inside")
    tr.add("stray", 3)
    assert tr.orphan_counters == {"stray": 5}
    assert tr.total("stray") == 5
    assert tr.total("inside") == 1


def test_find_and_current():
    tr = Tracer()
    assert tr.current() is NULL_SPAN
    with tr.span("stage") as s1:
        assert tr.current() is s1
    with tr.span("stage"):
        pass
    assert len(tr.find("stage")) == 2
    assert tr.find("missing") == []


def test_exception_annotates_span_and_propagates():
    tr = Tracer()
    with pytest.raises(ValueError):
        with tr.span("boom"):
            raise ValueError("nope")
    (span,) = tr.find("boom")
    assert "ValueError" in span.attrs["error"]


def test_worker_thread_attribution_via_attach():
    tr = Tracer()
    results = []

    def worker(parent: Span) -> None:
        with tr.attach(parent):
            with tr.span("task") as s:
                s.add("done")
        results.append(s)

    with tr.span("schedule") as sched:
        t = threading.Thread(target=worker, args=(sched,))
        t.start()
        t.join()
    (task,) = results
    assert task.parent_id == sched.span_id
    assert task.thread != sched.thread


def test_global_tracer_default_is_noop():
    assert get_tracer() is NOOP_TRACER
    assert not get_tracer().enabled
    # every operation is a harmless pass returning the shared null span
    span = NOOP_TRACER.span("x", a=1)
    with span as s:
        s.add("c")
        s.set_gauge("g", 1)
        s.observe("h", 1)
    NOOP_TRACER.add("c")
    with NOOP_TRACER.attach(None):
        pass


def test_set_tracer_none_restores_noop():
    tr = Tracer()
    assert set_tracer(tr) is tr
    assert get_tracer() is tr
    assert set_tracer(None) is NOOP_TRACER
    assert get_tracer() is NOOP_TRACER


def test_use_tracer_restores_previous_even_on_error():
    tr = Tracer()
    with pytest.raises(RuntimeError):
        with use_tracer(tr):
            assert get_tracer() is tr
            raise RuntimeError
    assert get_tracer() is NOOP_TRACER


def test_traced_decorator():
    tr = Tracer()

    @traced("compute", flavour="test")
    def compute(x):
        return x + 1

    with use_tracer(tr):
        assert compute(1) == 2
    (span,) = tr.find("compute")
    assert span.attrs == {"flavour": "test"}
    # outside a tracer the decorator is a no-op wrapper
    assert compute(2) == 3
    assert len(tr.spans) == 1


def test_noop_tracer_instances_are_disabled():
    assert not NoOpTracer().enabled
    assert Tracer().enabled


# ---------------------------------------------------------------------------
# JSONL schema
# ---------------------------------------------------------------------------
def _sample_tracer() -> Tracer:
    tr = Tracer()
    tr.add("orphan", 4)
    with tr.span("root", k=8):
        tr.add("sssp.calls", 2)
        with tr.span("child") as c:
            c.set_gauge("bound", float("inf"))
            c.observe("h", 1.5)
    return tr


def test_jsonl_schema_and_roundtrip(tmp_path):
    tr = _sample_tracer()
    out = tmp_path / "trace.jsonl"
    write_jsonl(tr, out)

    lines = out.read_text().strip().splitlines()
    records = [json.loads(line) for line in lines]  # every line valid JSON
    meta, spans = records[0], records[1:]
    assert meta["type"] == "meta"
    assert meta["version"] == 1
    assert meta["span_count"] == len(spans) == 2
    assert meta["orphan_counters"] == {"orphan": 4}

    for rec in spans:
        assert rec["type"] == "span"
        for key in ("id", "parent", "name", "start", "duration", "counters"):
            assert key in rec, key
    by_name = {r["name"]: r for r in spans}
    assert by_name["child"]["parent"] == by_name["root"]["id"]
    assert by_name["root"]["counters"] == {"sssp.calls": 2}
    assert by_name["child"]["gauges"]["bound"] == "inf"  # non-finite stringified
    assert by_name["child"]["hists"]["h"] == [1, 1.5, 1.5, 1.5]

    assert read_jsonl(out) == records
    assert load_spans(out) == spans


def test_render_tree_accepts_spans_and_records(tmp_path):
    tr = _sample_tracer()
    text = render_tree(tr.spans)
    assert "root" in text and "child" in text
    assert text.index("root") < text.index("child")
    out = tmp_path / "t.jsonl"
    write_jsonl(tr, out)
    assert "child" in render_tree(load_spans(out))
    counters = render_counters(tr.spans)
    assert "sssp.calls" in counters
