"""Disabled-path overhead bound (set ``REPRO_RUN_SLOW=1`` to enable).

The instrumentation lives permanently in library code, so its cost with
the default :class:`~repro.obs.tracer.NoOpTracer` installed must be
negligible.  The uninstrumented program no longer exists to A/B against,
so the bound is established constructively:

1. run one ``bench_hot_path``-style PeeK query on a medium-suite graph
   under a *counting* no-op tracer (``enabled=False``, so every
   ``tracer.enabled`` gate takes the disabled branch) to count exactly how
   many tracer touch-points the query executes;
2. microbenchmark the per-touch cost of the real no-op tracer;
3. assert touch-points × per-touch cost < 3% of the query's wall time
   with the no-op tracer installed.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

import pytest

from repro.core.peek import PeeK
from repro.obs import NOOP_TRACER, use_tracer

_opt_in = pytest.mark.skipif(
    not os.environ.get("REPRO_RUN_SLOW"),
    reason="set REPRO_RUN_SLOW=1 to run the tracing-overhead bound",
)


def slow(fn):
    return pytest.mark.slow(_opt_in(fn))


class CountingNoOpTracer:
    """Behaves exactly like NoOpTracer (enabled=False) but counts every
    touch — including reads of the ``enabled`` gate, which is all a hot
    kernel does on the disabled path."""

    def __init__(self) -> None:
        self.calls = 0

    @property
    def enabled(self) -> bool:
        self.calls += 1
        return False

    def span(self, name, **attrs):
        self.calls += 1
        from repro.obs.tracer import NULL_SPAN

        return NULL_SPAN

    def current(self):
        self.calls += 1
        from repro.obs.tracer import NULL_SPAN

        return NULL_SPAN

    def add(self, counter, value=1):
        self.calls += 1

    def set_gauge(self, gauge, value):
        self.calls += 1

    def observe(self, hist, value):
        self.calls += 1

    @contextmanager
    def attach(self, span):
        self.calls += 1
        yield


def _noop_cost_per_touch(iters: int = 200_000) -> float:
    """Seconds per disabled-path touch: get_tracer + gate + span lifecycle.

    This deliberately times the *most expensive* touch shape (a full
    ``span()`` create/enter/exit); counter adds are cheaper, so charging
    every counted touch at this rate overstates the true overhead.
    """
    from repro.obs.tracer import get_tracer

    t0 = time.perf_counter()
    for _ in range(iters):
        tracer = get_tracer()
        if tracer.enabled:  # pragma: no cover - disabled by construction
            raise AssertionError
        with tracer.span("x"):
            pass
    return (time.perf_counter() - t0) / iters


@slow
def test_disabled_tracing_overhead_under_3_percent():
    from repro.graph.suite import random_st_pairs, suite_graph

    graph = suite_graph("LJ", "medium")
    (source, target), = random_st_pairs(graph, 1, seed=17)
    k = 8

    # 1. count every tracer touch-point the query executes when disabled
    counting = CountingNoOpTracer()
    with use_tracer(counting):
        result = PeeK(graph, source, target).run(k)
    assert len(result.paths) == k
    touches = counting.calls
    assert touches > 0  # the instrumentation is actually wired in

    # 2. wall time of the same query with the production no-op tracer
    with use_tracer(NOOP_TRACER):
        t0 = time.perf_counter()
        PeeK(graph, source, target).run(k)
        wall = time.perf_counter() - t0

    # 3. the bound
    per_touch = _noop_cost_per_touch()
    overhead = touches * per_touch
    share = overhead / wall
    print(
        f"\n{touches} tracer touches x {per_touch * 1e9:.0f}ns = "
        f"{overhead * 1e3:.3f}ms over {wall * 1e3:.1f}ms wall "
        f"({share:.3%})"
    )
    assert share < 0.03, (
        f"disabled-path tracing overhead {share:.2%} exceeds the 3% budget "
        f"({touches} touches x {per_touch * 1e9:.0f}ns on {wall:.3f}s)"
    )
