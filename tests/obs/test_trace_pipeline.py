"""End-to-end traces: the spans and counters a real run must emit.

This is the acceptance test of the observability layer: tracing a
``repro.solve(..., algorithm="PeeK")`` run yields nested
``prune``/``compact``/``ksp`` spans carrying relaxation and spur-search
counters, and the whole thing round-trips through JSONL.
"""

from __future__ import annotations

import pytest

import repro
from repro.core.batch import BatchPeeK
from repro.obs import Tracer, load_spans, use_tracer, write_jsonl
from tests.conftest import random_reachable_pair


@pytest.fixture
def traced_peek(medium_er):
    s, t = random_reachable_pair(medium_er, seed=7)
    with use_tracer(Tracer()) as tracer:
        result = repro.solve(medium_er, s, t, k=8)
    return tracer, result


def _one(tracer, name):
    spans = tracer.find(name)
    assert len(spans) == 1, f"expected exactly one {name!r} span, got {spans}"
    return spans[0]


def test_peek_stage_tree(traced_peek):
    tracer, result = traced_peek
    assert len(result.paths) == 8

    solve = _one(tracer, "solve")
    peek = _one(tracer, "peek")
    prune = _one(tracer, "prune")
    compact = _one(tracer, "compact")
    ksp = _one(tracer, "ksp")

    assert solve.parent_id is None
    assert peek.parent_id == solve.span_id
    assert prune.parent_id == peek.span_id
    assert compact.parent_id == peek.span_id
    assert ksp.parent_id == peek.span_id

    assert solve.attrs["algorithm"] == "PeeK"
    assert solve.attrs["k"] == 8


def test_peek_counters(traced_peek):
    tracer, result = traced_peek
    prune = _one(tracer, "prune")
    ksp = _one(tracer, "ksp")

    # SSSP kernels ran inside the prune stage and reported aggregates
    assert prune.counters["sssp.calls"] >= 2  # forward + backward
    assert prune.counters["sssp.edges_relaxed"] > 0
    assert prune.counters["sssp.vertices_settled"] > 0
    assert prune.gauges["prune.pruned_vertex_fraction"] == pytest.approx(
        result.prune.pruned_vertex_fraction
    )

    # the KSP stage reported deviation work
    assert ksp.counters["ksp.spur_searches"] > 0
    assert ksp.counters["ksp.sssp_calls"] > 0
    stats = result.stats
    assert ksp.counters["ksp.spur_searches"] == sum(
        len(t) for t in stats.iteration_tasks
    )

    compact = _one(tracer, "compact")
    assert compact.attrs["strategy"] == result.compaction.strategy


def test_trace_jsonl_roundtrip(traced_peek, tmp_path):
    tracer, _ = traced_peek
    out = tmp_path / "peek.jsonl"
    write_jsonl(tracer, out)
    spans = load_spans(out)
    assert len(spans) == len(tracer.spans)
    by_name = {r["name"]: r for r in spans}
    assert {"solve", "peek", "prune", "compact", "ksp"} <= set(by_name)
    # counters survive the round trip exactly
    assert by_name["ksp"]["counters"] == tracer.find("ksp")[0].counters
    assert by_name["prune"]["counters"]["sssp.edges_relaxed"] > 0


def test_standalone_algorithm_emits_ksp_span(medium_er):
    s, t = random_reachable_pair(medium_er, seed=9)
    with use_tracer(Tracer()) as tracer:
        repro.solve(medium_er, s, t, k=4, algorithm="SB*")
    ksp = _one(tracer, "ksp")
    assert ksp.attrs["algorithm"] == "SB*"
    assert ksp.parent_id == _one(tracer, "solve").span_id
    assert ksp.counters["ksp.spur_searches"] > 0


def test_workspace_reuse_visible_in_trace(medium_er):
    s, t = random_reachable_pair(medium_er, seed=9)
    with use_tracer(Tracer()) as tracer:
        repro.solve(medium_er, s, t, k=6, algorithm="OptYen", use_workspace=True)
    ksp = _one(tracer, "ksp")
    assert ksp.gauges.get("workspace.epochs", 0) >= 1
    assert tracer.total("workspace.queries") > 0


def test_batch_cache_counters(medium_er):
    pairs = [random_reachable_pair(medium_er, seed=s) for s in (1, 2)]
    with use_tracer(Tracer()) as tracer:
        batch = BatchPeeK(medium_er)
        for s, t in pairs:
            batch.query(s, t, 4)
        batch.query(*pairs[0], 4)  # same endpoints: trees already cached
    hits = tracer.total("batch.cache_hits")
    misses = tracer.total("batch.cache_misses")
    assert misses > 0
    assert hits >= 2  # repeat query reuses both SSSP trees
    assert len(tracer.find("batch.query")) == 3
    # batch queries contain the same stage spans as one-shot PeeK
    assert len(tracer.find("prune")) == 3
    assert len(tracer.find("ksp")) == 3


def test_disabled_tracer_emits_nothing(medium_er):
    """The default NoOpTracer must stay installed and collect nothing."""
    from repro.obs import NOOP_TRACER, get_tracer

    s, t = random_reachable_pair(medium_er, seed=3)
    assert get_tracer() is NOOP_TRACER
    result = repro.solve(medium_er, s, t, k=4)
    assert len(result.paths) == 4
    assert get_tracer() is NOOP_TRACER
