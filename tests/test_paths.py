"""Unit tests for :mod:`repro.paths`."""

import numpy as np
import pytest

from repro.paths import (
    INF,
    Path,
    concatenate,
    is_simple,
    path_distance,
    reconstruct_path,
    reconstruct_reverse_path,
)


class TestPath:
    def test_basic_properties(self):
        p = Path(distance=3.5, vertices=(0, 2, 5))
        assert p.source == 0
        assert p.target == 5
        assert p.num_edges == 2
        assert len(p) == 3
        assert p.edges() == [(0, 2), (2, 5)]

    def test_single_vertex_path(self):
        p = Path(distance=0.0, vertices=(7,))
        assert p.source == p.target == 7
        assert p.num_edges == 0
        assert p.edges() == []

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            Path(distance=0.0, vertices=())

    def test_simplicity(self):
        assert Path(distance=1.0, vertices=(0, 1, 2)).is_simple()
        assert not Path(distance=1.0, vertices=(0, 1, 0)).is_simple()

    def test_ordering_by_distance_then_vertices(self):
        a = Path(distance=1.0, vertices=(0, 2))
        b = Path(distance=2.0, vertices=(0, 1))
        c = Path(distance=1.0, vertices=(0, 3))
        assert sorted([b, c, a]) == [a, c, b]

    def test_paths_hashable_and_equal(self):
        a = Path(distance=1.0, vertices=(0, 1))
        b = Path(distance=1.0, vertices=(0, 1))
        assert a == b
        assert hash(a) == hash(b)


class TestIsSimple:
    def test_simple(self):
        assert is_simple([1, 2, 3])

    def test_not_simple(self):
        assert not is_simple([1, 2, 1])

    def test_empty_is_simple(self):
        assert is_simple([])


class TestPathDistance:
    def test_recomputes_weight(self, diamond_graph):
        assert path_distance([0, 1, 3], diamond_graph) == pytest.approx(2.0)

    def test_missing_edge_raises(self, diamond_graph):
        with pytest.raises(KeyError):
            path_distance([1, 0], diamond_graph)

    def test_single_vertex_distance_zero(self, diamond_graph):
        assert path_distance([2], diamond_graph) == 0.0


class TestReconstruct:
    def test_forward(self):
        parent = np.array([0, 0, 1, 2], dtype=np.int64)
        assert reconstruct_path(parent, 0, 3) == [0, 1, 2, 3]

    def test_forward_source_itself(self):
        parent = np.array([0, -1], dtype=np.int64)
        assert reconstruct_path(parent, 0, 0) == [0]

    def test_forward_unreached(self):
        parent = np.array([0, -1], dtype=np.int64)
        assert reconstruct_path(parent, 0, 1) is None

    def test_forward_cycle_detected(self):
        parent = np.array([0, 2, 1], dtype=np.int64)
        with pytest.raises(RuntimeError):
            reconstruct_path(parent, 0, 2)

    def test_reverse(self):
        # next-hop array toward target 3
        parent = np.array([1, 2, 3, 3], dtype=np.int64)
        assert reconstruct_reverse_path(parent, 0, 3) == [0, 1, 2, 3]

    def test_reverse_unreached(self):
        parent = np.array([-1, 3, 3, 3], dtype=np.int64)
        assert reconstruct_reverse_path(parent, 0, 3) is None


class TestConcatenate:
    def test_joins_on_shared_vertex(self):
        assert concatenate((0, 1, 2), (2, 3)) == (0, 1, 2, 3)

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            concatenate((0, 1), (2, 3))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            concatenate((), (1,))


def test_inf_constant():
    assert INF == float("inf")
