"""Cross-module integration tests: the full system on suite graphs.

These tie the layers together the way the benchmark harness does —
generator suite → pruning → compaction → KSP → parallel/distributed
models — and assert the end-to-end invariants the paper's experiments rely
on.
"""

import numpy as np
import pytest

from repro.bench.harness import ExperimentRunner
from repro.core.peek import PeeK, peek_ksp
from repro.distributed import CommModel, distributed_peek
from repro.graph.suite import SUITE_NAMES, random_st_pairs, suite_graph
from repro.ksp import make_algorithm
from repro.parallel import peek_workload, simulate


@pytest.fixture(scope="module")
def tiny_cases():
    cases = []
    for name in SUITE_NAMES:
        g = suite_graph(name, "tiny")
        s, t = random_st_pairs(g, 1, seed=99)[0]
        cases.append((name, g, s, t))
    return cases


class TestEndToEndAgreement:
    def test_all_algorithms_all_suite_graphs(self, tiny_cases):
        """Every algorithm, every suite family, identical distances."""
        for name, g, s, t in tiny_cases:
            base = None
            for method in ("Yen", "OptYen", "NC", "SB", "SB*", "PNC", "PeeK"):
                got = make_algorithm(method, g, s, t).run(6).distances
                if base is None:
                    base = got
                else:
                    assert np.allclose(got, base), (name, method)

    def test_unit_weight_graphs_tie_heavy(self, tiny_cases):
        """-U graphs produce integer distances with heavy ties; grouping
        and ordering must stay consistent."""
        for name, g, s, t in tiny_cases:
            if not name.endswith("U"):
                continue
            res = peek_ksp(g, s, t, 8)
            assert all(float(d).is_integer() for d in res.distances)
            assert res.distances == sorted(res.distances)


class TestPipelineInvariants:
    def test_prune_then_parallel_simulation(self, tiny_cases):
        """PeeK results feed the workload builders and the simulator for
        every suite family without shape errors, and speedups are sane."""
        for name, g, s, t in tiny_cases:
            res = PeeK(g, s, t).run(4)
            wl = peek_workload(res)
            rep1 = simulate(wl, 1)
            rep32 = simulate(wl, 32)
            assert rep1.time_units == wl.total_work
            assert rep32.time_units <= rep1.time_units

    def test_distributed_consistency_one_family(self):
        g = suite_graph("LJ", "tiny")
        s, t = random_st_pairs(g, 1, seed=98)[0]
        serial = peek_ksp(g, s, t, 4).distances
        model = CommModel().scaled_for(g.num_edges)
        for nodes in (1, 3):
            rep = distributed_peek(g, s, t, 4, nodes, model=model)
            assert np.allclose(rep.result.distances, serial)


class TestHarnessRoundTrip:
    def test_runner_cross_validates_methods(self):
        runner = ExperimentRunner(
            scale="tiny", pairs_per_graph=1, deadline_seconds=60
        )
        records = []
        for method in ("OptYen", "SB*", "PeeK"):
            s, t = runner.pairs("GW")[0]
            records.append(runner.time_run(method, "GW", s, t, 6))
        runner.check_same_distances(records)
        assert all(r.ok for r in records)
