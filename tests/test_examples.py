"""Every example script must run end-to-end and print sensible output."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship six


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    """Run each example in-process (fast) and check it prints something."""
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out.strip()) > 0


def test_quickstart_via_subprocess():
    """One example is additionally exercised exactly as a user would."""
    script = next(p for p in EXAMPLES if p.stem == "quickstart")
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert "PeeK" in proc.stdout
    assert "speedup" in proc.stdout
