#!/usr/bin/env python
"""Routing & spectrum assignment in an optical transport network via KSP.

The paper's first motivating application (§1 "Routing"): in a flexible
optical path network, a connection request is served by computing the K
shortest candidate routes, then checking them *in distance order* for a
route whose fibre links all have a free spectrum slot; the first available
route wins (Wan et al., OFC 2011).

This example builds a realistic mesh topology (a grid backbone with random
express links, weights = fibre lengths), simulates a workload of connection
requests with random slot occupancy, and compares the blocking rate for
K = 1 (shortest path only) against K = 8 (KSP with PeeK) — showing why
operators compute more than one path.
"""

from __future__ import annotations

import numpy as np

from repro import PeeK
from repro.errors import UnreachableTargetError
from repro.graph.generators import grid_network
from repro.paths import Path

NUM_SLOTS = 12  # spectrum slots per fibre link


def build_network(rows: int = 8, cols: int = 8, seed: int = 1):
    """A national-backbone-like mesh: grid + 20% diagonal express links."""
    return grid_network(
        rows, cols, diagonal_prob=0.2, weight_scheme="random", seed=seed
    )


def route_is_available(
    path: Path, slot_occupancy: dict[tuple[int, int], set[int]]
) -> int | None:
    """First spectrum slot free on *every* link of the route, else None.

    The spectrum-continuity constraint of flexible optical networks: one
    slot index must be free end-to-end.
    """
    free: set[int] = set(range(NUM_SLOTS))
    for edge in path.edges():
        free &= set(range(NUM_SLOTS)) - slot_occupancy.get(edge, set())
        if not free:
            return None
    return min(free)


def serve_request(
    graph, source: int, target: int, k: int, slot_occupancy
) -> tuple[Path, int] | None:
    """KSP-based routing: first available of the K shortest routes."""
    try:
        result = PeeK(graph, source, target).run(k)
    except UnreachableTargetError:
        return None
    for path in result.paths:  # already in increasing distance order
        slot = route_is_available(path, slot_occupancy)
        if slot is not None:
            return path, slot
    return None


def simulate(k: int, num_requests: int = 150, seed: int = 3) -> float:
    """Blocking rate of the network for a random request workload."""
    rng = np.random.default_rng(seed)
    graph = build_network()
    n = graph.num_vertices
    slot_occupancy: dict[tuple[int, int], set[int]] = {}
    blocked = 0
    for _ in range(num_requests):
        s, t = rng.choice(n, size=2, replace=False)
        served = serve_request(graph, int(s), int(t), k, slot_occupancy)
        if served is None:
            blocked += 1
            continue
        path, slot = served
        for edge in path.edges():
            slot_occupancy.setdefault(edge, set()).add(slot)
    return blocked / num_requests


def main() -> None:
    print("optical routing & spectrum assignment (paper §1, Routing)")
    print(f"mesh: 8x8 backbone, {NUM_SLOTS} spectrum slots per link\n")
    for k in (1, 2, 4, 8):
        rate = simulate(k)
        print(f"K = {k:>2}: blocking rate {rate:6.1%}")
    print(
        "\nMore candidate routes -> fewer blocked connections; PeeK makes "
        "the K=8 sweep cost barely more than K=1."
    )


if __name__ == "__main__":
    main()
