#!/usr/bin/env python
"""KSP routing for a low-earth-orbit satellite constellation (paper §1).

The paper notes KSP's newest routing application: LEO satellite networks
(Starlink, Kuiper — refs [8, 26, 29]).  A Walker-delta constellation has a
time-varying topology of inter-satellite laser links (ISLs): each
satellite links to 2 neighbours in its orbital plane and 2 in adjacent
planes.  Ground traffic is routed over K shortest paths so that when a
link drops (a satellite passes into a thermal-constraint zone or fails),
traffic instantly fails over to the next precomputed path.

This example builds the constellation graph from orbital geometry (real
great-circle link lengths → propagation latency), computes K disjoint-ish
routes between two ground regions with PeeK, then knocks links out and
measures how many precomputed alternatives survive.
"""

from __future__ import annotations

import math

import numpy as np

from repro import peek_ksp
from repro.graph.build import from_edge_array

EARTH_RADIUS_KM = 6371.0
ALTITUDE_KM = 550.0
LIGHT_SPEED_KM_MS = 299.792  # km per millisecond


def satellite_positions(planes: int, per_plane: int, inclination_deg=53.0):
    """Unit-sphere positions of a Walker-delta constellation."""
    radius = EARTH_RADIUS_KM + ALTITUDE_KM
    incl = math.radians(inclination_deg)
    positions = np.zeros((planes * per_plane, 3))
    for p in range(planes):
        raan = 2 * math.pi * p / planes  # right ascension of the plane
        phase_offset = 2 * math.pi * p / (planes * per_plane)
        for s in range(per_plane):
            anomaly = 2 * math.pi * s / per_plane + phase_offset
            # orbit in plane coordinates, then rotate by inclination & RAAN
            x, y = math.cos(anomaly), math.sin(anomaly)
            pos = np.array(
                [
                    x,
                    y * math.cos(incl),
                    y * math.sin(incl),
                ]
            )
            rot = np.array(
                [
                    [math.cos(raan), -math.sin(raan), 0.0],
                    [math.sin(raan), math.cos(raan), 0.0],
                    [0.0, 0.0, 1.0],
                ]
            )
            positions[p * per_plane + s] = radius * (rot @ pos)
    return positions


def build_constellation(planes: int = 12, per_plane: int = 20):
    """ISL graph: intra-plane ring + links to the nearest neighbour in
    each adjacent plane; weight = one-way latency in milliseconds."""
    pos = satellite_positions(planes, per_plane)
    n = planes * per_plane
    src, dst, w = [], [], []

    def add_link(a: int, b: int) -> None:
        latency = float(np.linalg.norm(pos[a] - pos[b])) / LIGHT_SPEED_KM_MS
        src.extend([a, b])
        dst.extend([b, a])
        w.extend([latency, latency])

    for p in range(planes):
        base = p * per_plane
        for s in range(per_plane):
            add_link(base + s, base + (s + 1) % per_plane)  # intra-plane ring
            # nearest satellite in the next plane
            nxt = ((p + 1) % planes) * per_plane
            neighbours = nxt + np.arange(per_plane)
            d = np.linalg.norm(pos[neighbours] - pos[base + s], axis=1)
            add_link(base + s, int(neighbours[np.argmin(d)]))
    return from_edge_array(
        n,
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        np.asarray(w, dtype=np.float64),
    )


def main() -> None:
    rng = np.random.default_rng(5)
    constellation = build_constellation()
    print("LEO constellation routing (paper §1, Routing / LSN)")
    print(
        f"constellation: {constellation.num_vertices} satellites, "
        f"{constellation.num_edges // 2} ISLs\n"
    )

    uplink, downlink = 3, 157  # gateway satellites over two ground regions
    k = 8
    result = peek_ksp(constellation, uplink, downlink, k)
    print(f"K = {k} candidate routes, sat {uplink} -> sat {downlink}:")
    for i, path in enumerate(result.paths, 1):
        print(
            f"  route #{i}: {path.num_edges} hops, "
            f"{path.distance:6.2f} ms one-way"
        )

    # knock out 5% of ISLs and count surviving precomputed routes
    all_links = {
        (u, v) for u, v, _ in constellation.iter_edges()
    }
    failed = set()
    for u, v in rng.permutation(sorted(all_links))[: len(all_links) // 20]:
        failed.add((int(u), int(v)))
        failed.add((int(v), int(u)))
    surviving = [
        p for p in result.paths
        if not any(e in failed for e in p.edges())
    ]
    print(
        f"\nafter a 5% ISL outage, {len(surviving)}/{len(result.paths)} "
        f"precomputed routes survive; best fallback: "
        f"{surviving[0].distance:.2f} ms"
        if surviving
        else "\nall routes hit — recompute needed"
    )


if __name__ == "__main__":
    main()
