#!/usr/bin/env python
"""GQL / SQL:2023-PGQ style ``SHORTEST k`` and ``SHORTEST k GROUP`` queries.

The paper's fourth application (§1, Graph database): the ISO GQL query
language and the SQL/PGQ extension standardise two KSP query forms.  This
example implements a miniature property-graph query layer on top of the
library — named vertices, a tiny query API shaped like the GQL clauses,
PeeK as the execution engine — and runs both query forms on a small
"people and places" property graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.peek import PeeK
from repro.graph.build import from_edge_list
from repro.ksp.grouped import shortest_k_groups


@dataclass
class PropertyGraph:
    """A toy property graph: labelled vertices over a weighted CSR."""

    names: list[str]
    graph: object

    @classmethod
    def from_triples(cls, triples: list[tuple[str, str, float]]):
        names = sorted({a for a, _, _ in triples} | {b for _, b, _ in triples})
        index = {name: i for i, name in enumerate(names)}
        edges = [(index[a], index[b], w) for a, b, w in triples]
        return cls(names=names, graph=from_edge_list(len(names), edges))

    def id_of(self, name: str) -> int:
        return self.names.index(name)

    def shortest_k(self, src: str, dst: str, k: int):
        """``MATCH SHORTEST k (src)-[*]->(dst)`` — the exact KSP form."""
        result = PeeK(self.graph, self.id_of(src), self.id_of(dst)).run(k)
        return [
            ([self.names[v] for v in p.vertices], p.distance)
            for p in result.paths
        ]

    def shortest_k_group(self, src: str, dst: str, k: int):
        """``MATCH SHORTEST k GROUP (src)-[*]->(dst)`` — grouped by length."""
        algo = PeeK(self.graph, self.id_of(src), self.id_of(dst))
        algo.prepare(max(4 * k, 16))  # enough paths to fill k groups
        groups = shortest_k_groups(algo, k, max_paths=64)
        return [
            (
                g.distance,
                [[self.names[v] for v in p.vertices] for p in g.paths],
            )
            for g in groups
        ]


def build_transport_graph() -> PropertyGraph:
    """Cities and travel hours, with deliberate equal-length alternatives."""
    return PropertyGraph.from_triples(
        [
            ("berlin", "prague", 4.0),
            ("berlin", "hamburg", 2.0),
            ("hamburg", "copenhagen", 3.0),
            ("prague", "vienna", 3.0),
            ("berlin", "munich", 4.5),
            ("munich", "vienna", 2.5),
            ("vienna", "budapest", 2.5),
            ("prague", "budapest", 5.5),
            ("berlin", "warsaw", 5.0),
            ("warsaw", "budapest", 7.0),
            ("copenhagen", "berlin", 3.0),
            ("vienna", "prague", 3.0),
            ("budapest", "vienna", 2.5),
        ]
    )


def main() -> None:
    pg = build_transport_graph()

    print('GQL:  MATCH SHORTEST 4 (berlin)-[*]->(budapest)')
    for route, hours in pg.shortest_k("berlin", "budapest", 4):
        print(f"  {hours:4.1f}h  {' → '.join(route)}")

    print('\nGQL:  MATCH SHORTEST 2 GROUP (berlin)-[*]->(budapest)')
    for hours, routes in pg.shortest_k_group("berlin", "budapest", 2):
        print(f"  group at {hours:4.1f}h ({len(routes)} route(s)):")
        for route in routes:
            print(f"      {' → '.join(route)}")


if __name__ == "__main__":
    main()
