#!/usr/bin/env python
"""Using PeeK on your own dataset: file I/O, verification, batching.

Shows the workflow a downstream user follows with real data:

1. load a graph from a DIMACS ``.gr`` or edge-list file
   (here we synthesise a small road-like network and round-trip it
   through both formats, since the repo ships no data files);
2. answer a stream of KSP queries with :class:`repro.core.batch.BatchPeeK`
   so queries sharing endpoints reuse SSSP work;
3. audit every answer with the independent verifier.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core.batch import BatchPeeK
from repro.graph.generators import grid_network
from repro.graph.io import read_dimacs, read_edge_list, write_dimacs, write_edge_list
from repro.verify import verify_ksp_result


def main() -> None:
    # --- 1. a "dataset": a road-like 12x12 mesh with diagonal shortcuts ---
    original = grid_network(12, 12, diagonal_prob=0.15, seed=9)
    workdir = Path(tempfile.mkdtemp(prefix="peek-example-"))

    gr_path = workdir / "roads.gr"
    write_dimacs(original, gr_path, comment="synthetic road network")
    roads = read_dimacs(gr_path)
    print(f"loaded {gr_path.name}: {roads.num_vertices} junctions, "
          f"{roads.num_edges} road segments")

    txt_path = workdir / "roads.txt"
    write_edge_list(roads, txt_path)
    assert read_edge_list(txt_path).structurally_equal(roads)
    print(f"edge-list round trip OK ({txt_path.name})")

    # --- 2. a query stream: many vehicles to one destination -------------
    rng = np.random.default_rng(1)
    depot = roads.num_vertices - 1
    engine = BatchPeeK(roads)
    print(f"\nrouting 6 vehicles to junction {depot} (K=4 each):")
    for vehicle in range(6):
        start = int(rng.integers(0, roads.num_vertices - 1))
        result = engine.query(start, depot, k=4)

        # --- 3. audit the answer before using it ---
        report = verify_ksp_result(roads, start, depot, result)
        assert report, f"verification failed: {report}"

        best = result.paths[0]
        print(
            f"  vehicle {vehicle}: {start:>3} → {depot}, "
            f"{len(result.paths)} routes, best {best.distance:6.3f} "
            f"({best.num_edges} segments), verified ✓"
        )

    info = engine.cache_info
    print(
        f"\nSSSP cache: {info['hits']} hits / {info['misses']} misses — "
        "the shared destination pays its reverse SSSP once."
    )


if __name__ == "__main__":
    main()
