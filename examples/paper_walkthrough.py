#!/usr/bin/env python
"""A guided walk through the paper's Algorithm 2, stage by stage.

Runs PeeK's machinery on a small hand-checkable graph and prints every
intermediate artefact the paper's Figures 2–3 illustrate: the two SSSP
trees, the spSum array, the valid-path scan that sets the upper bound, the
prune decision, the compaction choice, and the final K paths.  Read this
next to §4 of the paper.
"""

from __future__ import annotations

import numpy as np

from repro.core.compaction import adaptive_compact
from repro.core.pruning import k_upper_bound_prune
from repro.core.validation import combined_path, validate_combined_path
from repro.graph.build import from_edge_list
from repro.ksp.optyen import OptYenKSP
from repro.paths import INF
from repro.sssp import dijkstra


def build_example():
    """Four disjoint s→t corridors of growing length plus a decoy loop.

    Simple paths: s-a-t = 2, s-b-t = 4, s-c-t = 6, s-d-t = 20; vertices
    e, f form a side loop that no s→t path can use.
    """
    edges = [
        (0, 1, 1.0), (1, 6, 1.0),    # s-a-t
        (0, 2, 2.0), (2, 6, 2.0),    # s-b-t
        (0, 3, 3.0), (3, 6, 3.0),    # s-c-t
        (0, 4, 10.0), (4, 6, 10.0),  # s-d-t
        (1, 5, 0.5), (5, 1, 0.5),    # a<->e side loop
    ]
    names = {0: "s", 1: "a", 2: "b", 3: "c", 4: "d", 5: "e", 6: "t"}
    return from_edge_list(7, edges), names


def fmt(value) -> str:
    return "∞" if value == INF else f"{value:g}"


def main() -> None:
    graph, names = build_example()
    s, t, k = 0, 6, 3
    label = lambda v: names[v]  # noqa: E731

    print("== the graph ==")
    for u, v, w in graph.iter_edges():
        print(f"  {label(u)} → {label(v)}  (w={w:g})")
    print(f"\nquery: {label(s)} → {label(t)}, K = {k}")

    print("\n== step 1: two SSSPs (Algorithm 2, lines 1-2) ==")
    fwd = dijkstra(graph, s)
    rev = dijkstra(graph.reverse(), t)
    print("  v     spSrc  spTgt  spSum")
    sp_sum = fwd.dist + rev.dist
    for v in range(graph.num_vertices):
        print(
            f"  {label(v):>3}   {fmt(fwd.dist[v]):>5}  "
            f"{fmt(rev.dist[v]):>5}  {fmt(sp_sum[v]):>5}"
        )

    print("\n== step 2: scan spSum for K valid unique paths (lines 5-9) ==")
    order = np.argsort(sp_sum, kind="stable")
    seen = set()
    bound = INF
    for v in order.tolist():
        if not np.isfinite(sp_sum[v]):
            continue
        parts = combined_path(fwd.parent, rev.parent, s, t, v)
        src_path, tgt_path = parts
        valid, full = validate_combined_path(src_path, tgt_path)
        pretty = "→".join(label(x) for x in full)
        if not valid:
            print(f"  via {label(v)}: {pretty}  — INVALID (duplicate vertex)")
            continue
        if full in seen:
            print(f"  via {label(v)}: {pretty}  — duplicate path, skipped")
            continue
        seen.add(full)
        print(f"  via {label(v)}: {pretty}  — valid #{len(seen)}, "
              f"dist {fmt(sp_sum[v])}")
        if len(seen) == k:
            bound = float(sp_sum[v])
            break
    print(f"  ⇒ K upper bound b = {bound:g}")

    print("\n== step 3: prune (lines 10-13) ==")
    pr = k_upper_bound_prune(graph, s, t, k)
    assert pr.bound == bound
    pruned = [label(v) for v in range(graph.num_vertices)
              if not pr.keep_vertices[v]]
    print(f"  pruned vertices: {{{', '.join(pruned)}}} "
          f"(spSum > b, or unreachable)")
    heavy = int((~pr.keep_edges).sum())
    print(f"  pruned edges by weight > b: {heavy}")

    print("\n== adaptive compaction (§5) ==")
    comp = adaptive_compact(graph, pr.keep_vertices, pr.keep_edges)
    print(
        f"  remaining: {comp.remaining_vertices} vertices, "
        f"{comp.remaining_edges}/{comp.original_edges} edges "
        f"→ strategy: {comp.strategy}"
    )

    print("\n== KSP on the remnant (customised OptYen, §3) ==")
    from repro.core.compaction import RegeneratedGraph

    if isinstance(comp.compacted, RegeneratedGraph):
        regen = comp.compacted
        inner = OptYenKSP(
            regen.graph, regen.map_vertex(s), regen.map_vertex(t)
        )
        back = regen.map_path_back
    else:
        inner = OptYenKSP(comp.compacted, s, t)
        back = tuple
    for i, path in enumerate(inner.run(k).paths, 1):
        verts = "→".join(label(v) for v in back(path.vertices))
        print(f"  #{i}: {verts}  (dist {path.distance:g})")

    print("\nTheorem 4.3 in action: same top-K as the full graph, from a "
          "fraction of it.")


if __name__ == "__main__":
    main()
