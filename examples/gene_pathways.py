#!/usr/bin/env python
"""Regulatory-pathway inference on a gene-interaction network (paper §1).

In a gene interaction network, vertices are genes, edges are measured
interactions, and a *regulatory pathway* from a causal gene to a target
gene is a path of interacting genes.  Because interaction data is noisy,
biologists inspect the K best pathways rather than just the single
strongest one (Shih & Parthasarathy 2012; Lhota & Xie 2016 — the paper's
refs [50, 62]).

Edge weights: interactions carry a confidence score in (0, 1]; a pathway's
plausibility is the product of its confidences, so using
``weight = -log(confidence)`` turns "most plausible pathway" into a
shortest-path problem — the standard trick, and PeeK applies unchanged.
"""

from __future__ import annotations

import math

import numpy as np

from repro import peek_ksp, shortest_k_groups
from repro.core.peek import PeeK
from repro.graph.build import from_edge_array


def synthesize_interactome(num_genes: int = 2500, seed: int = 23):
    """A scale-free interaction network with confidence-scored edges.

    Real interactomes (BioGRID, STRING) are scale-free with confidence
    scores concentrated near the detection threshold; a preferential-
    attachment structure with Beta-distributed confidences mimics both.
    """
    from repro.graph.generators import preferential_attachment

    structure = preferential_attachment(num_genes, 6, seed=seed)
    rng = np.random.default_rng(seed + 1)
    confidence = rng.beta(4.0, 2.0, size=structure.num_edges)
    confidence = np.clip(confidence, 0.05, 0.999)
    weights = -np.log(confidence)
    return from_edge_array(
        num_genes,
        structure.edge_sources(),
        structure.indices,
        weights,
        dedup=False,
    )


def main() -> None:
    interactome = synthesize_interactome()
    causal_gene, target_gene = 17, 2201
    k = 10

    print("gene regulatory pathway inference (paper §1, Biology analysis)")
    print(
        f"interactome: {interactome.num_vertices} genes, "
        f"{interactome.num_edges} interactions"
    )
    print(f"causal gene g{causal_gene} -> target gene g{target_gene}, "
          f"K = {k}\n")

    result = peek_ksp(interactome, causal_gene, target_gene, k)
    print("top candidate pathways (plausibility = product of confidences):")
    for rank, path in enumerate(result.paths, 1):
        plausibility = math.exp(-path.distance)
        genes = " → ".join(f"g{v}" for v in path.vertices)
        print(f"  #{rank:>2}  p={plausibility:6.3f}  {genes}")

    # genes recurring across many top pathways are the interesting hubs
    counts: dict[int, int] = {}
    for path in result.paths:
        for gene in path.vertices[1:-1]:
            counts[gene] = counts.get(gene, 0) + 1
    hubs = sorted(counts.items(), key=lambda kv: -kv[1])[:5]
    print("\nintermediate genes recurring across pathways (likely "
          "regulators):")
    for gene, c in hubs:
        print(f"  g{gene}: appears in {c}/{len(result.paths)} pathways")

    # the GQL SHORTEST k GROUP variant groups pathways of equal plausibility
    algo = PeeK(interactome, causal_gene, target_gene)
    algo.prepare(k)
    groups = shortest_k_groups(algo, 3)
    print("\nSHORTEST 3 GROUP view (equal-plausibility tiers):")
    for group in groups:
        print(
            f"  p={math.exp(-group.distance):6.3f}: "
            f"{len(group.paths)} pathway(s)"
        )


if __name__ == "__main__":
    main()
