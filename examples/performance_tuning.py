#!/usr/bin/env python
"""Performance tuning: profile a query, then turn the knobs.

The HPC workflow in three acts: measure where the time goes
(`stage_breakdown`), identify the lever (here: K and the compaction
strategy), and verify the change moved the needle without changing the
answer.  Prints a per-stage table for several K values and a compaction-
strategy comparison on the remnant the pruning produces.
"""

from __future__ import annotations

from repro.bench.profiling import stage_breakdown
from repro.graph.suite import random_st_pairs, suite_graph


def main() -> None:
    graph = suite_graph("GT", "small")
    (source, target), = random_st_pairs(graph, 1, seed=11)
    print(
        f"graph GT: {graph.num_vertices} vertices, {graph.num_edges} edges; "
        f"query {source}->{target}\n"
    )

    print("== where the time goes, by K ==")
    print(f"{'K':>5} {'prune (s)':>10} {'compact (s)':>12} {'KSP (s)':>9} "
          f"{'total (s)':>10} {'kept edges':>11}")
    reference = {}
    last_kept = None
    for k in (2, 8, 32):
        bd = stage_breakdown(graph, source, target, k)
        reference[k] = bd.distances
        last_kept = bd.remaining_edges
        print(
            f"{k:>5} {bd.prune_seconds:>10.4f} {bd.compact_seconds:>12.4f} "
            f"{bd.ksp_seconds:>9.4f} {bd.total_seconds:>10.4f} "
            f"{bd.remaining_edges:>11}"
        )
    print(
        "\nThe prune stage is K-independent (two SSSPs) and dominates at "
        "small K; the KSP stage grows with K but runs on the remnant."
    )

    pruned_frac = 1.0 - last_kept / graph.num_edges
    print(f"\n== compaction strategy, pinned (K=32, {pruned_frac:.0%} of "
          f"edges pruned) ==")
    print(f"{'strategy':>14} {'compact (s)':>12} {'KSP (s)':>9} {'total (s)':>10}")
    totals = {}
    for strategy in ("regeneration", "edge-swap", "status-array"):
        bd = stage_breakdown(
            graph, source, target, 32, compaction_force=strategy
        )
        assert bd.distances == reference[32], "strategy must not change paths"
        totals[strategy] = bd.total_seconds
        print(
            f"{strategy:>14} {bd.compact_seconds:>12.4f} "
            f"{bd.ksp_seconds:>9.4f} {bd.total_seconds:>10.4f}"
        )
    best = min(totals, key=totals.get)
    print(
        f"\nBest end-to-end here: {best}. The adaptive α rule exists to "
        "make that choice automatically from the remnant size."
    )


if __name__ == "__main__":
    main()
