#!/usr/bin/env python
"""Performance tuning: profile a query, then turn the knobs.

The HPC workflow in four acts: measure where the time goes
(`stage_breakdown`), identify the lever (here: K, the compaction strategy,
and the solver's SSSP workspace), and verify each change moved the needle
without changing the answer.  Prints a per-stage table for several K
values, a compaction-strategy comparison on the remnant the pruning
produces, and a workspace on/off timing of the raw Yen spur-search loop.
"""

from __future__ import annotations

import time

from repro.bench.profiling import stage_breakdown
from repro.graph.suite import random_st_pairs, suite_graph
from repro.ksp.yen import YenKSP


def main() -> None:
    graph = suite_graph("GT", "small")
    (source, target), = random_st_pairs(graph, 1, seed=11)
    print(
        f"graph GT: {graph.num_vertices} vertices, {graph.num_edges} edges; "
        f"query {source}->{target}\n"
    )

    print("== where the time goes, by K ==")
    print(f"{'K':>5} {'prune (s)':>10} {'compact (s)':>12} {'KSP (s)':>9} "
          f"{'total (s)':>10} {'kept edges':>11}")
    reference = {}
    last_kept = None
    for k in (2, 8, 32):
        bd = stage_breakdown(graph, source, target, k)
        reference[k] = bd.distances
        last_kept = bd.remaining_edges
        print(
            f"{k:>5} {bd.prune_seconds:>10.4f} {bd.compact_seconds:>12.4f} "
            f"{bd.ksp_seconds:>9.4f} {bd.total_seconds:>10.4f} "
            f"{bd.remaining_edges:>11}"
        )
    print(
        "\nThe prune stage is K-independent (two SSSPs) and dominates at "
        "small K; the KSP stage grows with K but runs on the remnant."
    )

    pruned_frac = 1.0 - last_kept / graph.num_edges
    print(f"\n== compaction strategy, pinned (K=32, {pruned_frac:.0%} of "
          f"edges pruned) ==")
    print(f"{'strategy':>14} {'compact (s)':>12} {'KSP (s)':>9} {'total (s)':>10}")
    totals = {}
    for strategy in ("regeneration", "edge-swap", "status-array"):
        bd = stage_breakdown(
            graph, source, target, 32, compaction_force=strategy
        )
        assert bd.distances == reference[32], "strategy must not change paths"
        totals[strategy] = bd.total_seconds
        print(
            f"{strategy:>14} {bd.compact_seconds:>12.4f} "
            f"{bd.ksp_seconds:>9.4f} {bd.total_seconds:>10.4f}"
        )
    best = min(totals, key=totals.get)
    print(
        f"\nBest end-to-end here: {best}. The adaptive α rule exists to "
        "make that choice automatically from the remnant size."
    )

    print("\n== solver-level SSSP workspace reuse (Yen, K=16) ==")
    timings = {}
    results = {}
    for use_workspace in (False, True):
        t0 = time.perf_counter()
        results[use_workspace] = YenKSP(
            graph, source, target, use_workspace=use_workspace
        ).run(16)
        timings[use_workspace] = time.perf_counter() - t0
    assert [p.distance for p in results[True].paths] == [
        p.distance for p in results[False].paths
    ], "the workspace must not change the answer"
    print(
        f"{'fresh allocation':>18}: {timings[False]:.4f} s\n"
        f"{'shared workspace':>18}: {timings[True]:.4f} s  "
        f"({timings[False] / timings[True]:.2f}x)"
    )
    print(
        "\nEvery spur search reuses one epoch-stamped dist/parent array set "
        "with an incrementally-maintained ban mask (O(1) setup instead of "
        "O(n)) — identical paths, identical relaxation counts. This is the "
        "default; use_workspace=False restores fresh allocation."
    )


if __name__ == "__main__":
    main()
