#!/usr/bin/env python
"""Quickstart: build a graph, run PeeK, compare against Yen's algorithm.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import PeeK, peek_ksp, yen_ksp
from repro.graph.generators import preferential_attachment
from repro.graph.suite import random_st_pairs


def main() -> None:
    # 1. A synthetic social network: 5,000 users, skewed degrees,
    #    random edge weights in (0, 1].
    graph = preferential_attachment(5000, 8, seed=42)
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 2. Pick a random source and a reachable target.
    (source, target), = random_st_pairs(graph, 1, seed=7)
    print(f"query: {source} -> {target}, K = 16")

    # 3. PeeK: prune with the K upper bound, compact, compute.
    t0 = time.perf_counter()
    result = peek_ksp(graph, source, target, k=16)
    peek_seconds = time.perf_counter() - t0

    print(f"\nPeeK found {len(result.paths)} paths in {peek_seconds:.3f}s")
    print(
        f"  pruning removed {result.prune.pruned_vertex_fraction:.1%} of "
        f"vertices (bound b = {result.prune.bound:.4f})"
    )
    print(
        f"  compaction strategy: {result.compaction.strategy} "
        f"({result.compaction.remaining_edges} edges remained)"
    )
    for i, path in enumerate(result.paths[:5]):
        verts = "→".join(map(str, path.vertices))
        print(f"  #{i + 1}  dist={path.distance:.4f}  {verts}")

    # 4. Cross-check with classic Yen (slow but trivially correct).
    t0 = time.perf_counter()
    reference = yen_ksp(graph, source, target, 16)
    yen_seconds = time.perf_counter() - t0
    assert [round(d, 9) for d in result.distances] == [
        round(d, 9) for d in reference.distances
    ], "PeeK must reproduce Yen's distances exactly"
    print(
        f"\nYen agrees, in {yen_seconds:.3f}s — "
        f"PeeK speedup {yen_seconds / peek_seconds:.1f}x"
    )

    # 5. The PeeK object also supports incremental iteration.
    algo = PeeK(graph, source, target)
    algo.prepare(4)
    print("\nincremental iteration:", [
        round(p.distance, 4) for p in algo.iter_paths()
    ])


if __name__ == "__main__":
    main()
