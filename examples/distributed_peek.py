#!/usr/bin/env python
"""Distributed PeeK on the simulated cluster substrate (paper §6.2/Fig 10).

Runs the same query over 1..32 simulated computing nodes (16 cores each),
verifying the distributed pipeline returns the serial result exactly and
printing the BSP accounting: compute vs communication, message volume,
speedup and GTEPS — the shape of the paper's Figure 10.
"""

from __future__ import annotations

import time

from repro.core.peek import peek_ksp
from repro.distributed import CommModel, distributed_peek
from repro.graph.suite import random_st_pairs, suite_graph
from repro.parallel.metrics import gteps
from repro.sssp import delta_stepping


def main() -> None:
    graph = suite_graph("GT", "small")
    (source, target), = random_st_pairs(graph, 1, seed=4)
    k = 8
    print(
        f"graph GT (Twitter analogue): {graph.num_vertices} vertices, "
        f"{graph.num_edges} edges; query {source}->{target}, K={k}\n"
    )

    serial = peek_ksp(graph, source, target, k)
    print(f"serial PeeK distances: {[round(d, 3) for d in serial.distances]}")

    # calibrate one work unit to real seconds (one Δ-stepping edge cost)
    t0 = time.perf_counter()
    delta_stepping(graph, source)
    unit_seconds = (time.perf_counter() - t0) / max(graph.num_edges, 1)

    # scale the BSP constants to this graph's size (see DESIGN.md §1)
    model = CommModel().scaled_for(graph.num_edges)

    print(f"\n{'nodes':>5} {'cores':>6} {'speedup':>8} {'comm %':>7} "
          f"{'messages':>9} {'GTEPS':>7}")
    base_units = None
    for nodes in (1, 2, 4, 8, 16, 32):
        report = distributed_peek(
            graph, source, target, k, nodes, model=model
        )
        assert report.result.distances == serial.distances, (
            "distributed PeeK must match serial PeeK exactly"
        )
        if base_units is None:
            base_units = report.time_units
        comm_frac = report.comm.comm_units / max(report.time_units, 1e-12)
        rate = gteps(
            report.edges_traversed, report.time_units * unit_seconds
        )
        print(
            f"{nodes:>5} {nodes * 16:>6} "
            f"{base_units / report.time_units:>7.1f}x "
            f"{comm_frac:>6.1%} {report.comm.total_messages:>9} "
            f"{rate:>7.3f}"
        )

    print(
        "\nSpeedup grows sublinearly as communication takes over — the "
        "Figure 10 shape. Every number derives from real per-rank "
        "executions of the distributed algorithms (see repro.distributed)."
    )


if __name__ == "__main__":
    main()
